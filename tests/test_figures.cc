/**
 * @file
 * Figure-registry tests: the full paper catalogue is registered (every
 * figure, table, and section study rides the SweepSpec runner), every
 * smoke spec expands to a small, well-formed job list, and a ported
 * figure reproduces end-to-end with bit-identical rows on 1 vs 4
 * threads — the determinism contract CI enforces for the whole
 * registry via ci/smoke_figures.sh.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "runner/figures.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"

namespace {

using namespace leaky;
using runner::RunOptions;

RunOptions
smokeOptions()
{
    RunOptions opts;
    opts.smoke = true;
    return opts;
}

TEST(FigureRegistry, CoversTheFullPaperCatalogue)
{
    const auto &figures = runner::figures();
    // Figs. 2-13, Tables 2-3, and the §6.3/§9-12 studies: at least 20
    // entries once every hand-rolled binary is ported (ISSUE 3).
    EXPECT_GE(figures.size(), 20u);

    std::set<std::string> names, csvs;
    for (const auto &figure : figures) {
        EXPECT_FALSE(figure.name.empty());
        EXPECT_FALSE(figure.title.empty()) << figure.name;
        EXPECT_FALSE(figure.paper_ref.empty()) << figure.name;
        EXPECT_TRUE(figure.make != nullptr) << figure.name;
        // Artifacts follow the fig_*/tab_* naming convention and are
        // unique, so `repro --fig all --out DIR` never overwrites.
        EXPECT_TRUE(figure.csv_name.rfind("fig_", 0) == 0 ||
                    figure.csv_name.rfind("tab_", 0) == 0)
            << figure.csv_name;
        EXPECT_TRUE(names.insert(figure.name).second) << figure.name;
        EXPECT_TRUE(csvs.insert(figure.csv_name).second)
            << figure.csv_name;
    }
}

TEST(FigureRegistry, ExposesTheFullCatalogue)
{
    // One registry entry per retired bench/ binary family, plus the
    // tracker-family generalisation figures.
    for (const char *name :
         {"latency", "backoff-period", "message-prac", "message-rfm",
          "bitrate", "capacity", "appnoise", "multibit", "rfm-count",
          "action-latency", "fingerprint", "strips", "classifiers",
          "fingerprint-cv", "cache-prefetch", "threshold",
          "mitigation", "countermeasures", "counter-leak",
          "granularity", "trigger", "cross-defense",
          "tracker-threshold", "cross-channel", "channel-scaling",
          "mapping-order", "mapping-recovery", "fuzz-search",
          "fuzz-replay"}) {
        EXPECT_NE(runner::findFigure(name), nullptr) << name;
    }
    EXPECT_EQ(runner::findFigure("nope"), nullptr);
}

TEST(FigureRegistry, SmokeSpecsExpandSmallAndWellFormed)
{
    for (const auto &figure : runner::figures()) {
        const auto spec = figure.make(smokeOptions());
        EXPECT_FALSE(spec.columns.empty()) << figure.name;
        ASSERT_FALSE(spec.axes.empty()) << figure.name;
        for (const auto &axis : spec.axes) {
            EXPECT_FALSE(axis.name.empty()) << figure.name;
            EXPECT_FALSE(axis.values.empty()) << figure.name;
        }
        const auto jobs = runner::jobCount(spec);
        EXPECT_GE(jobs, 1u) << figure.name;
        // Smoke is the CI scale: a bounded handful of jobs per figure.
        EXPECT_LE(jobs, 64u) << figure.name;
        EXPECT_EQ(runner::expandJobs(spec).size(), jobs) << figure.name;
        EXPECT_TRUE(spec.job != nullptr) << figure.name;
    }
}

TEST(FigureRegistry, DefaultScaleNeverShrinksBelowSmoke)
{
    RunOptions dflt; // Neither smoke nor full.
    for (const auto &figure : runner::figures()) {
        const auto smoke_jobs =
            runner::jobCount(figure.make(smokeOptions()));
        const auto default_jobs =
            runner::jobCount(figure.make(dflt));
        EXPECT_GE(default_jobs, smoke_jobs) << figure.name;
    }
}

TEST(FigureRegistry, SeedFlagReachesTheSpec)
{
    RunOptions seeded = smokeOptions();
    seeded.seed = 987654321;
    for (const auto &figure : runner::figures())
        EXPECT_EQ(figure.make(seeded).base_seed, 987654321u)
            << figure.name;
}

// A ported figure runs end-to-end: rows match the declared columns and
// are bit-identical on 1 vs 4 threads (the counter-leak study is the
// cheapest entry that simulates a complete attack per job).
TEST(FigureRegistry, PortedFigureIsThreadCountInvariant)
{
    const auto *figure = runner::findFigure("counter-leak");
    ASSERT_NE(figure, nullptr);
    const auto spec = figure->make(smokeOptions());
    const auto serial = runner::runSweep(spec, 1);
    const auto parallel = runner::runSweep(spec, 4);
    ASSERT_FALSE(serial.rows.empty());
    for (const auto &row : serial.rows)
        EXPECT_EQ(row.size(), spec.columns.size());
    EXPECT_EQ(serial.rows, parallel.rows);
    EXPECT_EQ(runner::toCsv(serial), runner::toCsv(parallel));

    // The summary digests the merged rows without touching the sweep.
    ASSERT_TRUE(figure->summarize != nullptr);
    const auto summary = figure->summarize(serial);
    EXPECT_NE(summary.find("mean leak time"), std::string::npos);
}

// The fuzzer figures carry the same contract: a whole evolutionary
// campaign (or replayed pattern) is one sweep job, so the merged CSV
// is bit-identical on 1 vs 4 threads.
TEST(FigureRegistry, FuzzFiguresAreThreadCountInvariant)
{
    for (const char *name : {"fuzz-search", "fuzz-replay"}) {
        const auto *figure = runner::findFigure(name);
        ASSERT_NE(figure, nullptr) << name;
        const auto spec = figure->make(smokeOptions());
        const auto serial = runner::runSweep(spec, 1);
        const auto parallel = runner::runSweep(spec, 4);
        ASSERT_FALSE(serial.rows.empty()) << name;
        for (const auto &row : serial.rows)
            EXPECT_EQ(row.size(), spec.columns.size()) << name;
        EXPECT_EQ(serial.rows, parallel.rows) << name;
        EXPECT_EQ(runner::toCsv(serial), runner::toCsv(parallel))
            << name;
        ASSERT_TRUE(figure->summarize != nullptr) << name;
        EXPECT_FALSE(figure->summarize(serial).empty()) << name;
    }
}

TEST(FigureRegistry, ReproduceWritesTheCsvArtifact)
{
    const auto *figure = runner::findFigure("message-prac");
    ASSERT_NE(figure, nullptr);
    RunOptions opts = smokeOptions();
    opts.threads = 2;
    opts.out_dir = (std::filesystem::temp_directory_path() /
                    "leaky_figures_test")
                       .string();
    const auto outcome = runner::reproduceFigure(*figure, opts);
    EXPECT_NE(outcome.summary.find("decoded text"), std::string::npos);

    std::ifstream csv(outcome.csv_path);
    ASSERT_TRUE(csv.good()) << outcome.csv_path;
    std::string header;
    std::getline(csv, header);
    EXPECT_EQ(header, "window,sent,detections,decoded");
    std::size_t data_rows = 0;
    for (std::string line; std::getline(csv, line);)
        data_rows += line.empty() ? 0 : 1;
    EXPECT_EQ(data_rows, outcome.sweep.rows.size());
    std::filesystem::remove_all(opts.out_dir);
}

} // namespace
