/** @file End-to-end mapping-recovery tests: the DARE-style attacker
 *  must learn the true bank/row XOR functions of every sweep mapping
 *  from row-buffer-conflict timing alone. */

#include <gtest/gtest.h>

#include "core/experiments.hh"

namespace {

TEST(MappingRecovery, SweepCasesCoverThePresetsAndXorVariants)
{
    const auto cases = leaky::core::recoveryMappings();
    ASSERT_EQ(cases.size(), 6u);
    // Complexity counts folded (non-permutation) taps; presets first.
    EXPECT_EQ(cases[0].complexity, 0u);
    EXPECT_EQ(cases[1].complexity, 0u);
    EXPECT_EQ(cases[2].complexity, 0u);
    EXPECT_LT(cases[3].complexity, cases[4].complexity);
    EXPECT_LT(cases[4].complexity, cases[5].complexity);
    for (const auto &c : cases)
        EXPECT_FALSE(c.name.empty());
}

TEST(MappingRecovery, RecoversEverySweepMappingUndefended)
{
    for (const auto &c : leaky::core::recoveryMappings()) {
        const auto cell = leaky::core::runMappingRecoveryCell(
            c.spec, leaky::defense::DefenseKind::kNone, 0xface);
        EXPECT_TRUE(cell.bank_match)
            << c.name << ": wrong bank functions";
        EXPECT_TRUE(cell.row_match) << c.name << ": wrong row functions";
        EXPECT_TRUE(cell.recovered.bank_solved) << c.name;
        EXPECT_TRUE(cell.recovered.row_solved) << c.name;
        EXPECT_GT(cell.recovered.probes, 0u) << c.name;
    }
}

TEST(MappingRecovery, HarderMappingsNeedWiderDifferenceWindows)
{
    const auto cases = leaky::core::recoveryMappings();
    // The far fold (a high physical bit XORed into a bank function)
    // is invisible inside the narrow starting window, so validation
    // must push the attacker to a wider one; the row-interleaved
    // preset resolves inside the first window.
    const auto easy = leaky::core::runMappingRecoveryCell(
        cases[0].spec, leaky::defense::DefenseKind::kNone, 0xbeef);
    const auto hard = leaky::core::runMappingRecoveryCell(
        cases[5].spec, leaky::defense::DefenseKind::kNone, 0xbeef);
    EXPECT_LT(easy.recovered.final_window, hard.recovered.final_window);
    EXPECT_LT(easy.recovered.probes, hard.recovered.probes);
}

TEST(MappingRecovery, SurvivesAnActiveDefense)
{
    // PRAC back-offs inflate tail latencies; the min-over-samples
    // conflict statistic must shrug them off.
    const auto cell = leaky::core::runMappingRecoveryCell(
        leaky::core::recoveryMappings()[3].spec,
        leaky::defense::DefenseKind::kPrac, 0xd00d);
    EXPECT_TRUE(cell.bank_match);
    EXPECT_TRUE(cell.row_match);
}

} // namespace
