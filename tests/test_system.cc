/** @file System-level tests: MemoryPort behaviour, routing, retries. */

#include <gtest/gtest.h>

#include "attack/dram_addr.hh"
#include "defense/factory.hh"
#include "sys/system.hh"

namespace {

using leaky::defense::DefenseKind;
using leaky::sim::Tick;
using leaky::sys::System;
using leaky::sys::SystemConfig;

TEST(System, ReadCompletesWithFrontendLatency)
{
    System system(SystemConfig::paper(DefenseKind::kNone));
    const auto addr =
        leaky::attack::rowAddress(system.mapper(), 0, 0, 0, 0, 10);
    Tick done = 0;
    system.issueRead(addr, 0, [&done](Tick t) { done = t; });
    system.run(leaky::sim::kUs);
    ASSERT_GT(done, 0u);
    const auto &t = system.controller(0).config().dram.timing;
    // Two frontend hops + ACT + RCD + CL + burst.
    const Tick floor = 2 * system.config().frontend_latency + t.tRCD +
                       t.tCL + t.tBURST;
    EXPECT_GE(done, floor);
    EXPECT_LE(done, floor + 20'000);
}

TEST(System, WritesAreFireAndForget)
{
    System system(SystemConfig::paper(DefenseKind::kNone));
    const auto addr =
        leaky::attack::rowAddress(system.mapper(), 0, 0, 0, 0, 10);
    system.issueWrite(addr, 0);
    system.run(leaky::sim::kUs);
    EXPECT_EQ(system.controller(0).stats().writes_served, 1u);
}

TEST(System, FullQueueRetriesUntilServed)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kNone);
    cfg.ctrl.read_queue_depth = 4;
    System system(cfg);
    int completions = 0;
    // Far more requests than queue slots, all to one bank (slow).
    for (int i = 0; i < 32; ++i) {
        const auto addr = leaky::attack::rowAddress(
            system.mapper(), 0, 0, 0, 0,
            static_cast<std::uint32_t>(i % 2 ? 100 : 200));
        system.issueRead(addr, 0, [&completions](Tick) {
            completions += 1;
        });
    }
    system.run(100 * leaky::sim::kUs);
    EXPECT_EQ(completions, 32);
}

TEST(System, MultiChannelRoutesByAddress)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kNone);
    cfg.channels = 2;
    System system(cfg);
    const auto ch0 =
        leaky::attack::rowAddress(system.mapper(), 0, 0, 0, 0, 10);
    const auto ch1 =
        leaky::attack::rowAddress(system.mapper(), 1, 0, 0, 0, 10);
    int done = 0;
    system.issueRead(ch0, 0, [&done](Tick) { done += 1; });
    system.issueRead(ch1, 0, [&done](Tick) { done += 1; });
    system.run(leaky::sim::kUs);
    EXPECT_EQ(done, 2);
    EXPECT_EQ(system.controller(0).stats().reads_served, 1u);
    EXPECT_EQ(system.controller(1).stats().reads_served, 1u);
}

TEST(System, PaperPresetMatchesTable1)
{
    const auto cfg = SystemConfig::paper(DefenseKind::kPrac);
    EXPECT_EQ(cfg.ctrl.dram.org.ranks, 2u);
    EXPECT_EQ(cfg.ctrl.dram.org.bankgroups, 8u);
    EXPECT_EQ(cfg.ctrl.dram.org.banks_per_group, 4u);
    EXPECT_EQ(cfg.ctrl.dram.org.rows, 128u * 1024);
    EXPECT_EQ(cfg.ctrl.read_queue_depth, 64u);
    EXPECT_EQ(cfg.ctrl.column_cap, 16u);
}

TEST(System, DefenseBundleAttachedPerChannel)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kPrac, 160);
    cfg.channels = 2;
    System system(cfg);
    EXPECT_NE(system.defenseBundle(0).device, nullptr);
    EXPECT_NE(system.defenseBundle(1).device, nullptr);
    EXPECT_NE(system.defenseBundle(0).device.get(),
              system.defenseBundle(1).device.get());
}

} // namespace
