/** @file System-level tests: MemoryPort behaviour, routing, retries,
 *  and the multi-channel topology (per-channel stats views, defense
 *  isolation, and the scaling figure family's determinism). */

#include <gtest/gtest.h>

#include "attack/dram_addr.hh"
#include "attack/probe.hh"
#include "defense/factory.hh"
#include "runner/figures.hh"
#include "runner/runner.hh"
#include "sys/system.hh"

namespace {

using leaky::defense::DefenseKind;
using leaky::sim::Tick;
using leaky::sys::System;
using leaky::sys::SystemConfig;

TEST(System, ReadCompletesWithFrontendLatency)
{
    System system(SystemConfig::paper(DefenseKind::kNone));
    const auto addr =
        leaky::attack::rowAddress(system.mapper(), 0, 0, 0, 0, 10);
    Tick done = 0;
    system.issueRead(addr, 0, [&done](Tick t) { done = t; });
    system.run(leaky::sim::kUs);
    ASSERT_GT(done, 0u);
    const auto &t = system.controller(0).config().dram.timing;
    // Two frontend hops + ACT + RCD + CL + burst.
    const Tick floor = 2 * system.config().frontend_latency + t.tRCD +
                       t.tCL + t.tBURST;
    EXPECT_GE(done, floor);
    EXPECT_LE(done, floor + 20'000);
}

TEST(System, WritesAreFireAndForget)
{
    System system(SystemConfig::paper(DefenseKind::kNone));
    const auto addr =
        leaky::attack::rowAddress(system.mapper(), 0, 0, 0, 0, 10);
    system.issueWrite(addr, 0);
    system.run(leaky::sim::kUs);
    EXPECT_EQ(system.controller(0).stats().writes_served, 1u);
}

TEST(System, FullQueueRetriesUntilServed)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kNone);
    cfg.ctrl.read_queue_depth = 4;
    System system(cfg);
    int completions = 0;
    // Far more requests than queue slots, all to one bank (slow).
    for (int i = 0; i < 32; ++i) {
        const auto addr = leaky::attack::rowAddress(
            system.mapper(), 0, 0, 0, 0,
            static_cast<std::uint32_t>(i % 2 ? 100 : 200));
        system.issueRead(addr, 0, [&completions](Tick) {
            completions += 1;
        });
    }
    system.run(100 * leaky::sim::kUs);
    EXPECT_EQ(completions, 32);
}

TEST(System, MultiChannelRoutesByAddress)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kNone);
    cfg.channels = 2;
    System system(cfg);
    const auto ch0 =
        leaky::attack::rowAddress(system.mapper(), 0, 0, 0, 0, 10);
    const auto ch1 =
        leaky::attack::rowAddress(system.mapper(), 1, 0, 0, 0, 10);
    int done = 0;
    system.issueRead(ch0, 0, [&done](Tick) { done += 1; });
    system.issueRead(ch1, 0, [&done](Tick) { done += 1; });
    system.run(leaky::sim::kUs);
    EXPECT_EQ(done, 2);
    EXPECT_EQ(system.controller(0).stats().reads_served, 1u);
    EXPECT_EQ(system.controller(1).stats().reads_served, 1u);
}

TEST(System, PaperPresetMatchesTable1)
{
    const auto cfg = SystemConfig::paper(DefenseKind::kPrac);
    EXPECT_EQ(cfg.ctrl.dram.org.ranks, 2u);
    EXPECT_EQ(cfg.ctrl.dram.org.bankgroups, 8u);
    EXPECT_EQ(cfg.ctrl.dram.org.banks_per_group, 4u);
    EXPECT_EQ(cfg.ctrl.dram.org.rows, 128u * 1024);
    EXPECT_EQ(cfg.ctrl.read_queue_depth, 64u);
    EXPECT_EQ(cfg.ctrl.column_cap, 16u);
}

TEST(System, PerChannelStatsSumToAggregate)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kNone);
    cfg.channels = 2;
    System system(cfg);
    // Unbalanced traffic so the per-channel views must differ.
    for (int i = 0; i < 6; ++i) {
        const auto addr = leaky::attack::rowAddress(
            system.mapper(), i < 4 ? 0 : 1, 0, 0, 0,
            static_cast<std::uint32_t>(10 + i));
        system.issueRead(addr, 0, [](Tick) {});
    }
    system.issueWrite(
        leaky::attack::rowAddress(system.mapper(), 1, 0, 0, 0, 99), 0);
    system.run(50 * leaky::sim::kUs);

    const auto &ch0 = system.stats(0);
    const auto &ch1 = system.stats(1);
    const auto total = system.aggregateStats();
    EXPECT_EQ(ch0.reads_served, 4u);
    EXPECT_EQ(ch1.reads_served, 2u);
    EXPECT_EQ(total.reads_served, ch0.reads_served + ch1.reads_served);
    EXPECT_EQ(total.writes_served,
              ch0.writes_served + ch1.writes_served);
    EXPECT_EQ(total.row_misses, ch0.row_misses + ch1.row_misses);
    EXPECT_EQ(total.refreshes, ch0.refreshes + ch1.refreshes);
    EXPECT_EQ(total.read_latency_sum,
              ch0.read_latency_sum + ch1.read_latency_sum);
    // Full-field check: the aggregate must equal the fold of the
    // public per-channel views (catches a channel skipped in
    // aggregateStats(), which the spot checks above could miss).
    leaky::ctrl::CtrlStats manual = ch0;
    manual += ch1;
    EXPECT_TRUE(total == manual);
}

// The paper's preventive actions are per-channel: continuously
// hammering channel 0 must not trigger a single action on channel 1
// (the isolation the cross-channel figure quantifies as capacity).
TEST(System, HammeringChannel0LeavesChannel1Untouched)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kPrac, 160);
    cfg.channels = 2;
    System system(cfg);

    leaky::attack::ProbeConfig probe_cfg;
    probe_cfg.channel = 0;
    probe_cfg.addrs = {
        leaky::attack::rowAddress(system.mapper(), probe_cfg.channel,
                                  0, 0, 0, 1000),
        leaky::attack::rowAddress(system.mapper(), probe_cfg.channel,
                                  0, 0, 0, 2000)};
    probe_cfg.iterations = 600; // > 2 x NBO alternating activations.
    leaky::attack::LatencyProbe probe(system, probe_cfg);
    bool done = false;
    probe.start([&done] { done = true; });
    // Bounded wait: a probe that stalls should fail the test, not
    // hang the binary until the ctest timeout.
    const Tick deadline = system.now() + 500 * leaky::sim::kMs;
    while (!done && system.now() < deadline)
        system.run(leaky::sim::kMs);
    ASSERT_TRUE(done) << "probe did not finish before the deadline";

    EXPECT_GT(system.stats(0).preventiveActions(), 0u);
    const auto &idle = system.stats(1);
    EXPECT_EQ(idle.preventiveActions(), 0u);
    EXPECT_EQ(idle.backoffs, 0u);
    EXPECT_EQ(idle.rfms, 0u);
    EXPECT_EQ(idle.reads_served, 0u);
    // And the aggregate view attributes everything to channel 0.
    EXPECT_EQ(system.aggregateStats().preventiveActions(),
              system.stats(0).preventiveActions());
}

// The scaling family rides the same determinism contract CI enforces
// for the whole registry: bit-identical CSV on 1 vs 4 threads.
TEST(System, ScalingFiguresAreThreadCountInvariant)
{
    namespace runner = leaky::runner;
    runner::RunOptions opts;
    opts.smoke = true;
    for (const char *name :
         {"cross-channel", "channel-scaling", "mapping-order",
          "mapping-recovery"}) {
        const auto *figure = runner::findFigure(name);
        ASSERT_NE(figure, nullptr) << name;
        const auto spec = figure->make(opts);
        const auto serial = runner::runSweep(spec, 1);
        const auto parallel = runner::runSweep(spec, 4);
        ASSERT_FALSE(serial.rows.empty()) << name;
        for (const auto &row : serial.rows)
            EXPECT_EQ(row.size(), spec.columns.size()) << name;
        EXPECT_EQ(serial.rows, parallel.rows) << name;
        EXPECT_EQ(runner::toCsv(serial), runner::toCsv(parallel))
            << name;
    }
}

TEST(System, MappingPresetReachesTheMapper)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kNone);
    cfg.mapping = leaky::dram::MappingPreset::kBankFirst;
    System system(cfg);
    const auto a0 = system.mapper().decode(0);
    const auto a1 = system.mapper().decode(64);
    EXPECT_FALSE(a0.sameBank(a1)); // Bank bits at the LSB end.
}

TEST(System, DefenseBundleAttachedPerChannel)
{
    SystemConfig cfg = SystemConfig::paper(DefenseKind::kPrac, 160);
    cfg.channels = 2;
    System system(cfg);
    EXPECT_NE(system.defenseBundle(0).device, nullptr);
    EXPECT_NE(system.defenseBundle(1).device, nullptr);
    EXPECT_NE(system.defenseBundle(0).device.get(),
              system.defenseBundle(1).device.get());
}

} // namespace
