/** @file Smoke tests of the core experiment runners (small sizes). */

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/report.hh"

namespace {

using namespace leaky;

TEST(Experiments, PracAttackSystemUsesPaperOperatingPoint)
{
    const auto cfg = core::pracAttackSystem();
    EXPECT_EQ(cfg.defense.kind, defense::DefenseKind::kPrac);
    EXPECT_EQ(cfg.defense.nbo_override, 128u);
    EXPECT_EQ(cfg.defense.rfms_per_backoff, 4u);
    const auto prfm = core::prfmAttackSystem();
    EXPECT_EQ(prfm.defense.trfm_override, 40u);
}

TEST(Experiments, LatencyTraceSeparatesBands)
{
    const auto result = core::runLatencyTrace(300);
    EXPECT_EQ(result.samples.size(), 300u);
    EXPECT_GT(result.mean_backoff_latency_ns,
              result.mean_refresh_latency_ns);
    EXPECT_GT(result.mean_refresh_latency_ns,
              result.mean_conflict_latency_ns);
}

TEST(Experiments, ChannelRunProducesMetrics)
{
    core::ChannelRunSpec spec;
    spec.kind = attack::ChannelKind::kPrac;
    spec.message_bytes = 4;
    spec.pattern = attack::MessagePattern::kCheckered0;
    const auto result = core::runChannel(spec);
    EXPECT_EQ(result.sent.size(), 32u);
    EXPECT_EQ(result.received.size(), 32u);
    EXPECT_LE(result.symbol_error, 0.05);
    EXPECT_GT(result.capacity, 30'000.0);
}

TEST(Experiments, PerfCellBaselineIsNearUnity)
{
    // No defense vs no defense must normalise to ~1.
    const auto mixes = workload::makeMixes(2, 4, 42);
    const double ws = core::runPerfCell(defense::DefenseKind::kNone,
                                        1024, mixes, 4, 50'000);
    EXPECT_NEAR(ws, 1.0, 0.02);
}

TEST(Experiments, DefenseCostsPerformanceAtLowNrh)
{
    const auto mixes = workload::makeMixes(2, 4, 42);
    const double high_nrh = core::runPerfCell(
        defense::DefenseKind::kPrac, 1024, mixes, 4, 50'000);
    const double low_nrh = core::runPerfCell(
        defense::DefenseKind::kPrac, 64, mixes, 4, 50'000);
    EXPECT_GT(high_nrh, low_nrh);
    EXPECT_LE(high_nrh, 1.01);
}

TEST(Experiments, FingerprintDatasetShapes)
{
    core::FingerprintSpec spec;
    spec.sites = 3;
    spec.loads_per_site = 2;
    spec.duration = sim::kMs;
    const auto raw = core::collectFingerprints(spec);
    ASSERT_EQ(raw.size(), 6u);
    const auto data = core::fingerprintDataset(raw);
    EXPECT_EQ(data.size(), 6u);
    EXPECT_EQ(data.n_classes, 3);
    EXPECT_EQ(data.features(), 39u);
}

TEST(Report, TableRendersAlignedAndCsv)
{
    core::Table table({"a", "bb"});
    table.addRow({"1", "2"});
    table.addRow({"333", "4"});
    const auto text = table.str();
    EXPECT_NE(text.find("a    bb"), std::string::npos);
    EXPECT_EQ(table.csv(), "a,bb\n1,2\n333,4\n");
}

TEST(Report, Formatting)
{
    EXPECT_EQ(core::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(core::fmtKbps(39'000.0), "39.0 Kbps");
    EXPECT_EQ(core::sparkline({0.0, 1.0}).size(), 2u);
}

} // namespace
