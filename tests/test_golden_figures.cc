/**
 * @file
 * Golden-CSV differential harness: every registered figure, reproduced
 * at smoke scale, must be byte-identical to the CSV checked in under
 * tests/golden/. This is the correctness contract for performance work
 * on the simulator hot path — a refactor that perturbs any observable
 * by even one tick changes latencies, bit decodes, or defense counters
 * somewhere in the 26-figure registry and fails tier-1 here, not just
 * in CI smoke.
 *
 * Each figure runs twice, on 1 thread and on 4, and both runs must
 * match the same golden file: the sweep runner's determinism contract
 * (rows merged in job-index order) makes the CSV thread-count
 * invariant, so one checked-in artifact pins both schedules.
 *
 * Regenerate after an intentional behavior change with
 *
 *     build/leakyhammer repro --update-golden
 *
 * run from the repo root, and review the CSV diff like any other code
 * change. LEAKY_GOLDEN_DIR is injected by CMake and points at the
 * source tree, so the test sees the same files the CLI writes.
 */

#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/figures.hh"

namespace {

using leaky::runner::Figure;
using leaky::runner::figures;
using leaky::runner::findFigure;
using leaky::runner::goldenCsv;
using leaky::runner::goldenPath;

std::string
goldenDir()
{
    return LEAKY_GOLDEN_DIR;
}

// Read the whole file; empty optional-style sentinel via `ok`.
bool
slurp(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
}

// Show the first differing line so a golden mismatch reports *where*
// the timing diverged, not just that 30 KB of CSV differ.
std::string
firstDiff(const std::string &want, const std::string &got)
{
    std::istringstream a(want), b(got);
    std::string la, lb;
    for (std::size_t line = 1;; ++line) {
        const bool ha = static_cast<bool>(std::getline(a, la));
        const bool hb = static_cast<bool>(std::getline(b, lb));
        if (!ha && !hb)
            return "files differ only in trailing bytes";
        if (la != lb || ha != hb) {
            std::ostringstream msg;
            msg << "first difference at line " << line << ":\n  golden: "
                << (ha ? la : "<eof>") << "\n  actual: "
                << (hb ? lb : "<eof>");
            return msg.str();
        }
    }
}

class GoldenFigureTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenFigureTest, SmokeCsvMatchesGoldenOn1And4Threads)
{
    const Figure *figure = findFigure(GetParam());
    ASSERT_NE(figure, nullptr);

    const std::string path = goldenPath(goldenDir(), *figure);
    std::string want;
    ASSERT_TRUE(slurp(path, &want))
        << "missing golden " << path
        << " — regenerate with `build/leakyhammer repro "
           "--update-golden` from the repo root";

    const std::string got1 = goldenCsv(*figure, 1);
    EXPECT_EQ(want, got1)
        << "1-thread smoke CSV diverged from " << path << "\n"
        << firstDiff(want, got1);

    const std::string got4 = goldenCsv(*figure, 4);
    EXPECT_EQ(want, got4)
        << "4-thread smoke CSV diverged from " << path << "\n"
        << firstDiff(want, got4);
}

std::vector<std::string>
figureNames()
{
    std::vector<std::string> names;
    for (const auto &figure : figures())
        names.push_back(figure.name);
    return names;
}

std::string
paramName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string name = info.param;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllFigures, GoldenFigureTest,
                         ::testing::ValuesIn(figureNames()), paramName);

// Both directions of staleness: a figure without a golden means the
// harness silently stopped covering it; a golden without a figure
// means a rename left a dead artifact that would mask the first case.
TEST(GoldenRegistry, GoldenDirMatchesFigureRegistryBothWays)
{
    namespace fs = std::filesystem;
    ASSERT_TRUE(fs::is_directory(goldenDir()))
        << goldenDir() << " missing — run `build/leakyhammer repro "
                          "--update-golden` from the repo root";

    std::set<std::string> on_disk;
    for (const auto &entry : fs::directory_iterator(goldenDir()))
        if (entry.path().extension() == ".csv")
            on_disk.insert(entry.path().stem().string());

    std::set<std::string> registered;
    for (const auto &figure : figures())
        registered.insert(figure.name);

    for (const auto &name : registered)
        EXPECT_TRUE(on_disk.count(name))
            << "figure '" << name << "' has no golden CSV";
    for (const auto &name : on_disk)
        EXPECT_TRUE(registered.count(name))
            << "stale golden '" << name
            << ".csv' does not name a registered figure";
}

} // namespace
