#!/usr/bin/env python3
"""Self-test for tools/lint/leaky_lint.py, run from ctest.

A pinned accept/reject table of code snippets per rule (mirroring the
``MappingSpec`` / ``HammerPattern`` grammar-table idiom used by the C++
tests): each case writes a snippet into a temp tree at a chosen
relative path, runs the real lint engine over it, and asserts exactly
the expected ``[rule-id]``s fire on the expected lines. Waiver
parsing, unused-waiver errors, and the raw-string/comment lexer edge
cases get their own tables.
"""

import os
import sys
import tempfile
import unittest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO, "tools", "lint"))

import cpplex  # noqa: E402
import leaky_lint  # noqa: E402
import rules as rules_pkg  # noqa: E402


def run_lint(relpath, source, extra_files=()):
    """Lint one snippet as if it lived at ``relpath`` in the repo.

    Returns a sorted list of ``(line, rule_id)``. ``extra_files`` is a
    list of (relpath, source) written alongside (e.g. a sibling
    header).
    """
    known = set(rules_pkg.all_rule_ids())
    with tempfile.TemporaryDirectory() as root:
        for rel, text in list(extra_files) + [(relpath, source)]:
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as fh:
                fh.write(text)
        path = os.path.join(root, relpath)
        diags = leaky_lint.lint_file(path, relpath,
                                     rules_pkg.ALL_RULES, known)
    return sorted((line, rule_id) for _, line, rule_id, _ in diags)


def fired(relpath, source, extra_files=()):
    return sorted({rule_id
                   for _, rule_id in run_lint(relpath, source,
                                              extra_files)})


class GrammarTable(unittest.TestCase):
    """One accept + one reject snippet per rule, table-driven."""

    # (name, relpath, snippet, expected rule ids)
    TABLE = [
        # ---------------------------------------------- no-wallclock
        ("wallclock_chrono_rejected", "src/sim/foo.cc",
         "void f() { auto t = std::chrono::steady_clock::now(); }\n",
         ["no-wallclock"]),
        ("wallclock_ctime_call_rejected", "src/sim/foo.cc",
         "long f() { return time(nullptr); }\n",
         ["no-wallclock"]),
        ("wallclock_member_time_accepted", "src/sim/foo.cc",
         "long f(Job &j) { return j.time(); }\n",
         []),
        ("wallclock_time_declaration_accepted", "src/sim/foo.cc",
         "Tick time(Tick t);\n",
         []),
        ("wallclock_outside_src_accepted", "tests/foo.cc",
         "void f() { auto t = std::chrono::steady_clock::now(); }\n",
         []),
        # -------------------------------------------- no-ambient-rng
        ("rng_engine_rejected", "src/sim/foo.cc",
         "std::mt19937 gen(42);\n",
         ["no-ambient-rng"]),
        ("rng_random_device_rejected", "src/attack/foo.cc",
         "std::random_device rd;\n",
         ["no-ambient-rng"]),
        ("rng_std_rand_rejected", "bench/foo.cc",
         "int f() { return std::rand(); }\n",
         ["no-ambient-rng"]),
        ("rng_engine_in_tests_rejected", "tests/foo.cc",
         "std::mt19937 gen(42);\n",
         ["no-ambient-rng"]),
        ("rng_sanctioned_home_accepted", "src/sim/rng.hh",
         "// the one place engines may live\nstd::mt19937 gen(42);\n",
         []),
        ("rng_sim_rng_accepted", "src/sim/foo.cc",
         "sim::Rng rng(sim::seedFanout(base, 3));\n",
         []),
        # ------------------ no-unordered-iteration-in-result-paths
        ("unordered_iter_in_csv_file_rejected", "src/core/foo.cc",
         "std::unordered_map<int, int> counts;\n"
         "std::string renderCsv() {\n"
         "    std::string out;\n"
         "    for (const auto &kv : counts) out += csvCell(kv.second);\n"
         "    return out;\n"
         "}\n",
         ["no-unordered-iteration-in-result-paths"]),
        ("unordered_iter_without_result_path_accepted",
         "src/defense/foo.cc",
         "std::unordered_map<int, int> counts;\n"
         "int maxOf() {\n"
         "    int m = 0;\n"
         "    for (const auto &kv : counts) m = std::max(m, kv.second);\n"
         "    return m;\n"
         "}\n",
         []),
        ("unordered_lookup_in_csv_file_accepted", "src/core/foo.cc",
         "std::unordered_map<int, int> counts;\n"
         "std::string renderCsv(int k) {\n"
         "    auto it = counts.find(k);\n"
         "    return csvCell(it->second);\n"
         "}\n",
         []),
        ("ordered_iter_in_csv_file_accepted", "src/core/foo.cc",
         "std::map<int, int> counts;\n"
         "std::string renderCsv() {\n"
         "    std::string out;\n"
         "    for (const auto &kv : counts) out += csvCell(kv.second);\n"
         "    return out;\n"
         "}\n",
         []),
        # ------------------------------------------ explicit-channel
        ("channel_literal_rejected", "src/attack/foo.cc",
         "void f(sys::System &s) { s.controller(0).stats(); }\n",
         ["explicit-channel"]),
        ("channel_stats_literal_rejected", "src/core/foo.cc",
         "void f(sys::System &s) { s.stats(1); }\n",
         ["explicit-channel"]),
        ("channel_variable_accepted", "src/attack/foo.cc",
         "void f(sys::System &s, unsigned ch) {"
         " s.controller(ch).stats(); }\n",
         []),
        ("channel_outside_scope_accepted", "src/runner/foo.cc",
         "void f(sys::System &s) { s.controller(0).stats(); }\n",
         []),
        # ------------------------------------------- no-raw-assert
        ("raw_assert_rejected", "src/sim/foo.cc",
         "void f(int x) { assert(x > 0); }\n",
         ["no-raw-assert"]),
        ("static_assert_accepted", "src/sim/foo.cc",
         "static_assert(sizeof(int) == 4, \"\");\n",
         []),
        ("leaky_assert_accepted", "src/sim/foo.cc",
         "void f(int x) { LEAKY_ASSERT(x > 0, \"positive\"); }\n",
         []),
        ("gtest_assert_accepted", "tests/foo.cc",
         "void f(int x) { ASSERT_EQ(x, 1); }\n",
         []),
        # ----------------------------------- no-side-effect-dchecks
        ("dcheck_increment_rejected", "src/sim/foo.cc",
         "void f(int x) { LEAKY_DCHECK(++x < 4, \"bump\"); }\n",
         ["no-side-effect-dchecks"]),
        ("dcheck_assignment_rejected", "src/sim/foo.cc",
         "void f(int x, int y) { LEAKY_DCHECK(x = y, \"oops\"); }\n",
         ["no-side-effect-dchecks"]),
        ("dcheck_comparisons_accepted", "src/sim/foo.cc",
         "void f(int x, int y) {"
         " LEAKY_DCHECK(x == y && x <= 4 && y >= 1, \"cmp\"); }\n",
         []),
        ("dcheck_in_tests_rejected", "tests/foo.cc",
         "void f(int x) { LEAKY_DCHECK(x--, \"decay\"); }\n",
         ["no-side-effect-dchecks"]),
        # ---------------------------------- signal-handler-safety
        ("sig_handler_safe_accepted", "src/campaign/foo.cc",
         "volatile std::sig_atomic_t g_stop = 0;\n"
         "extern \"C\" void onStop(int) { g_stop = 1; }\n"
         "void install() { std::signal(SIGINT, onStop); }\n",
         []),
        ("sig_handler_atomic_accepted", "src/campaign/foo.cc",
         "std::atomic<bool> g_stop{false};\n"
         "extern \"C\" void onStop(int) { g_stop.store(true); }\n"
         "void install() { std::signal(SIGINT, onStop); }\n",
         []),
        ("sig_handler_calls_stdio_rejected", "src/campaign/foo.cc",
         "volatile std::sig_atomic_t g_stop = 0;\n"
         "extern \"C\" void onStop(int) {"
         " printf(\"stop\\n\"); g_stop = 1; }\n"
         "void install() { std::signal(SIGINT, onStop); }\n",
         ["signal-handler-safety"]),
        ("sig_handler_plain_global_rejected", "src/campaign/foo.cc",
         "int g_count = 0;\n"
         "extern \"C\" void onStop(int) { g_count = 1; }\n"
         "void install() { std::signal(SIGINT, onStop); }\n",
         ["signal-handler-safety"]),
        ("sig_handler_missing_definition_rejected",
         "src/campaign/foo.cc",
         "void install() { std::signal(SIGINT, elsewhereHandler); }\n",
         ["signal-handler-safety"]),
        ("sig_ign_accepted", "src/campaign/foo.cc",
         "void install() { std::signal(SIGPIPE, SIG_IGN); }\n",
         []),
    ]

    def test_table(self):
        for name, relpath, source, expected in self.TABLE:
            with self.subTest(case=name):
                self.assertEqual(fired(relpath, source), sorted(expected),
                                 "case %s" % name)


class SiblingHeader(unittest.TestCase):
    """Members declared in foo.hh are known while linting foo.cc."""

    def test_member_iteration_via_header(self):
        header = ("struct Table {\n"
                  "    std::unordered_map<int, int> rows;\n"
                  "};\n")
        source = ("std::string renderCsv(const Table &t) {\n"
                  "    std::string out;\n"
                  "    for (const auto &kv : t.rows)\n"
                  "        out += csvCell(kv.second);\n"
                  "    return out;\n"
                  "}\n")
        self.assertEqual(
            fired("src/core/foo.cc", source,
                  [("src/core/foo.hh", header)]),
            ["no-unordered-iteration-in-result-paths"])

    def test_alias_of_member(self):
        header = ("struct Table {\n"
                  "    std::unordered_map<int, int> rows;\n"
                  "};\n")
        source = ("std::string renderCsv(Table &t) {\n"
                  "    auto &r = t.rows;\n"
                  "    std::string out;\n"
                  "    for (const auto &kv : r) out += csvCell(kv.second);\n"
                  "    return out;\n"
                  "}\n")
        self.assertEqual(
            fired("src/core/foo.cc", source,
                  [("src/core/foo.hh", header)]),
            ["no-unordered-iteration-in-result-paths"])

    def test_find_result_is_not_tainted(self):
        header = ("struct Table {\n"
                  "    std::unordered_map<int, std::vector<int>> rows;\n"
                  "};\n")
        source = ("std::string renderCsv(Table &t, int k) {\n"
                  "    const auto it = t.rows.find(k);\n"
                  "    std::string out;\n"
                  "    for (const auto &v : it->second) out += csvCell(v);\n"
                  "    return out;\n"
                  "}\n")
        self.assertEqual(
            fired("src/core/foo.cc", source,
                  [("src/core/foo.hh", header)]),
            [])


class Waivers(unittest.TestCase):
    SNIPPET = "auto t = std::chrono::steady_clock::now();\n"

    def test_trailing_waiver_suppresses(self):
        src = ("auto t = std::chrono::steady_clock::now();"
               " // lint:allow(no-wallclock): host-side only\n")
        self.assertEqual(fired("src/sim/foo.cc", src), [])

    def test_own_line_waiver_suppresses_next_line(self):
        src = ("// lint:allow(no-wallclock): host-side only\n" +
               self.SNIPPET)
        self.assertEqual(fired("src/sim/foo.cc", src), [])

    def test_own_line_waiver_skips_blank_and_comment_lines(self):
        src = ("// lint:allow(no-wallclock): host-side only\n"
               "\n"
               "// unrelated comment\n" +
               self.SNIPPET)
        self.assertEqual(fired("src/sim/foo.cc", src), [])

    def test_waiver_on_wrong_line_is_unused_and_violation_stands(self):
        src = (self.SNIPPET +
               "int x = 0;\n"
               "// lint:allow(no-wallclock): too late\n"
               "int y = 0;\n")
        self.assertEqual(fired("src/sim/foo.cc", src),
                         ["no-wallclock", "unused-waiver"])

    def test_unused_waiver_is_an_error(self):
        src = ("// lint:allow(no-wallclock): nothing to waive\n"
               "int x = 0;\n")
        self.assertEqual(fired("src/sim/foo.cc", src),
                         ["unused-waiver"])

    def test_unknown_rule_is_bad_waiver(self):
        src = ("// lint:allow(no-such-rule): hm\n"
               "int x = 0;\n")
        self.assertEqual(fired("src/sim/foo.cc", src), ["bad-waiver"])

    def test_missing_reason_is_bad_waiver(self):
        src = ("int x = 0; // lint:allow(no-wallclock):\n")
        self.assertEqual(fired("src/sim/foo.cc", src), ["bad-waiver"])

    def test_malformed_waiver_is_bad_waiver(self):
        src = ("int x = 0; // lint:allow no-wallclock because\n")
        self.assertEqual(fired("src/sim/foo.cc", src), ["bad-waiver"])

    def test_meta_rule_cannot_be_waived(self):
        src = ("// lint:allow(unused-waiver): nice try\n"
               "int x = 0;\n")
        self.assertEqual(fired("src/sim/foo.cc", src), ["bad-waiver"])

    def test_one_waiver_one_line_not_whole_file(self):
        src = ("// lint:allow(no-wallclock): first only\n" +
               self.SNIPPET +
               "auto u = std::chrono::steady_clock::now();\n")
        self.assertEqual(fired("src/sim/foo.cc", src),
                         ["no-wallclock"])


class LexerEdgeCases(unittest.TestCase):
    """Banned constructs in comments/strings must never fire, and the
    lexer must survive the nasty literal forms."""

    TABLE = [
        ("in_line_comment",
         "// std::steady_clock::now() would be bad\nint x = 0;\n", []),
        ("in_block_comment",
         "/* time(nullptr) in prose\n spanning lines */int x = 0;\n",
         []),
        ("in_string",
         'const char *s = "steady_clock and rand() inside";\n', []),
        ("in_raw_string",
         'const char *s = R"(std::mt19937 gen(1);)";\n', []),
        ("raw_string_with_delimiter",
         'const char *s = R"x(quote " then )" then mt19937)x";\n', []),
        ("raw_string_multiline",
         'const char *s = R"(line one\nassert(0)\n)";\nint y = 0;\n',
         []),
        ("escaped_quote_in_string",
         'const char *s = "escaped \\" quote, rand()";\n', []),
        ("char_literal",
         "char c = '\\\"'; int t = time(nullptr);\n",
         ["no-wallclock"]),
        ("banned_after_comment_still_fires",
         "/* benign */ auto t = std::chrono::steady_clock::now();\n",
         ["no-wallclock"]),
        ("waiver_inside_block_comment_is_not_a_waiver",
         "/* lint:allow(no-wallclock): not line comment */\n"
         "auto t = std::chrono::steady_clock::now();\n",
         ["no-wallclock"]),
    ]

    def test_table(self):
        for name, source, expected in self.TABLE:
            with self.subTest(case=name):
                self.assertEqual(fired("src/sim/foo.cc", source),
                                 sorted(expected), "case %s" % name)

    def test_static_assert_is_one_token(self):
        toks = cpplex.lex("static_assert(true);")
        self.assertEqual(toks[0].text, "static_assert")

    def test_maximal_munch_operators(self):
        toks = cpplex.lex("a <<= b; c == d; e != f;")
        puncts = [t.text for t in toks if t.kind == "punct"]
        self.assertIn("<<=", puncts)
        self.assertIn("==", puncts)
        self.assertNotIn("=", puncts)

    def test_line_numbers_across_literals(self):
        toks = cpplex.lex('auto s = R"(a\nb\nc)";\nint x;\n')
        idents = {t.text: t.line for t in toks if t.kind == "ident"}
        self.assertEqual(idents["x"], 4)

    def test_unterminated_block_comment_is_lex_error(self):
        with self.assertRaises(cpplex.LexError):
            cpplex.lex("/* never closed")

    def test_unterminated_raw_string_is_lex_error(self):
        with self.assertRaises(cpplex.LexError):
            cpplex.lex('auto s = R"(open forever;')


class RuleRegistry(unittest.TestCase):
    def test_ids_are_unique_and_kebab_case(self):
        ids = rules_pkg.all_rule_ids()
        self.assertEqual(len(ids), len(set(ids)))
        for rule_id in ids:
            self.assertRegex(rule_id, r"^[a-z][a-z0-9-]*$")

    def test_meta_rules_listed(self):
        ids = rules_pkg.all_rule_ids()
        self.assertIn("bad-waiver", ids)
        self.assertIn("unused-waiver", ids)

    def test_every_rule_has_summary(self):
        summaries = rules_pkg.rule_summaries()
        for rule_id in rules_pkg.all_rule_ids():
            self.assertTrue(summaries.get(rule_id))


if __name__ == "__main__":
    unittest.main()
