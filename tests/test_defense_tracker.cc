/**
 * @file
 * Tracker-defense family tests: Graphene's Misra-Gries table semantics
 * (spillover catch-up eviction, threshold-triggered victim refreshes),
 * Hydra's two-level escalation and counter-cache hit/miss accounting,
 * the steady-state zero-allocation contract of both backends, factory
 * wiring, and the CSV thread-count invariance of the two tracker
 * figures (the determinism contract CI enforces registry-wide).
 */

#include <gtest/gtest.h>

#include "defense/factory.hh"
#include "defense/graphene.hh"
#include "defense/hydra.hh"
#include "runner/figures.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "testing_alloc_counter.hh"

namespace {

using leaky::ctrl::PreventiveActionKind;
using leaky::defense::DefenseKind;
using leaky::defense::DefenseSpec;
using leaky::defense::GrapheneConfig;
using leaky::defense::GrapheneDefense;
using leaky::defense::HydraConfig;
using leaky::defense::HydraDefense;
using leaky::dram::Address;
using leaky::dram::Command;
using leaky::dram::DramConfig;

Address
rowAddr(std::uint32_t row, std::uint32_t bank = 0,
        std::uint32_t bg = 0)
{
    Address a;
    a.bankgroup = bg;
    a.bank = bank;
    a.row = row;
    return a;
}

// ------------------------------------------------------------ Graphene

TEST(Graphene, NoVrrBelowThreshold)
{
    GrapheneConfig cfg;
    cfg.threshold = 4;
    cfg.table_entries = 8;
    GrapheneDefense g(DramConfig::ddr5Paper(), cfg);
    for (int i = 0; i < 3; ++i)
        g.onActivate(rowAddr(1000), i);
    EXPECT_FALSE(g.pendingRfm(100).has_value());
    EXPECT_EQ(g.trackedCount(rowAddr(1000)), 3u);
}

TEST(Graphene, VrrRequestedAtThresholdAndCountResets)
{
    GrapheneConfig cfg;
    cfg.threshold = 4;
    cfg.table_entries = 8;
    GrapheneDefense g(DramConfig::ddr5Paper(), cfg);
    for (int i = 0; i < 4; ++i)
        g.onActivate(rowAddr(1000, 2, 3), i);

    const auto req = g.pendingRfm(100);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->kind, Command::kVrr);
    EXPECT_EQ(req->action, PreventiveActionKind::kVictimRefresh);
    EXPECT_EQ(req->target.row, 1000u);
    EXPECT_EQ(req->target.bank, 2u);
    EXPECT_EQ(req->target.bankgroup, 3u);
    // The row stays tracked, restarting from zero.
    EXPECT_EQ(g.trackedCount(rowAddr(1000, 2, 3)), 0u);
    EXPECT_EQ(g.vrrCount(), 1u);
    EXPECT_FALSE(g.pendingRfm(101).has_value());
}

TEST(Graphene, SpilloverMustCatchColdestEntryToEvict)
{
    GrapheneConfig cfg;
    cfg.threshold = 100; // Never fires in this test.
    cfg.table_entries = 2;
    GrapheneDefense g(DramConfig::ddr5Paper(), cfg);

    for (int i = 0; i < 5; ++i)
        g.onActivate(rowAddr(10), i); // A: 5
    for (int i = 0; i < 3; ++i)
        g.onActivate(rowAddr(20), i); // B: 3
    EXPECT_EQ(g.tableOccupancy(rowAddr(10)), 2u);

    // Two misses only grow the spillover counter -- still colder than
    // the coldest tracked row, so nothing is evicted.
    g.onActivate(rowAddr(30), 10);
    g.onActivate(rowAddr(30), 11);
    EXPECT_EQ(g.spillCount(rowAddr(30)), 2u);
    EXPECT_EQ(g.trackedCount(rowAddr(30)), 0u);
    EXPECT_EQ(g.trackedCount(rowAddr(20)), 3u);

    // The third miss catches up with B (count 3): B is evicted and the
    // incoming row inherits the spillover count -- the Misra-Gries
    // bound "an untracked row may have up to spill activations".
    g.onActivate(rowAddr(30), 12);
    EXPECT_EQ(g.spillCount(rowAddr(30)), 3u);
    EXPECT_EQ(g.trackedCount(rowAddr(30)), 3u);
    EXPECT_EQ(g.trackedCount(rowAddr(20)), 0u);
    EXPECT_EQ(g.trackedCount(rowAddr(10)), 5u); // The hot row survives.
}

TEST(Graphene, RefreshWindowResetWipesTablesAndSpill)
{
    GrapheneConfig cfg;
    cfg.threshold = 100;
    cfg.table_entries = 2;
    cfg.reset_period = 1000;
    GrapheneDefense g(DramConfig::ddr5Paper(), cfg);
    for (int i = 0; i < 5; ++i)
        g.onActivate(rowAddr(10), i);
    for (int i = 0; i < 3; ++i)
        g.onActivate(rowAddr(20), 5 + i);
    g.onActivate(rowAddr(30), 8); // Miss, spill 1 < coldest (3).
    EXPECT_EQ(g.spillCount(rowAddr(30)), 1u);
    EXPECT_EQ(g.trackedCount(rowAddr(20)), 3u);

    // Past the window edge every counter restarts -- the periodic
    // refresh wiped the retention clock the summary reasons about.
    g.onActivate(rowAddr(10), 2000);
    EXPECT_EQ(g.trackedCount(rowAddr(10)), 1u);
    EXPECT_EQ(g.trackedCount(rowAddr(20)), 0u);
    EXPECT_EQ(g.spillCount(rowAddr(30)), 0u);
    EXPECT_EQ(g.tableOccupancy(rowAddr(10)), 1u);
}

TEST(Graphene, BanksAreIndependent)
{
    GrapheneConfig cfg;
    cfg.threshold = 4;
    cfg.table_entries = 2;
    GrapheneDefense g(DramConfig::ddr5Paper(), cfg);
    for (int i = 0; i < 3; ++i) {
        g.onActivate(rowAddr(10, 0), i);
        g.onActivate(rowAddr(10, 1), i);
    }
    EXPECT_EQ(g.trackedCount(rowAddr(10, 0)), 3u);
    EXPECT_EQ(g.trackedCount(rowAddr(10, 1)), 3u);
    EXPECT_EQ(g.spillCount(rowAddr(10, 0)), 0u);
}

// --------------------------------------------------------------- Hydra

HydraConfig
smallHydra()
{
    HydraConfig cfg;
    cfg.group_threshold = 3;
    cfg.row_threshold = 6;
    cfg.rows_per_group = 8;
    cfg.cc_entries = 4;
    cfg.cc_ways = 2;
    return cfg;
}

TEST(Hydra, GroupFilterAbsorbsColdTraffic)
{
    HydraDefense h(DramConfig::ddr5Paper(), smallHydra());
    for (int i = 0; i < 3; ++i)
        h.onActivate(rowAddr(static_cast<std::uint32_t>(i)), i);
    EXPECT_EQ(h.groupCount(rowAddr(0)), 3u);
    EXPECT_EQ(h.ccMisses(), 0u);
    EXPECT_EQ(h.rowCount(rowAddr(0)), 0u); // No per-row state yet.
    EXPECT_FALSE(h.pendingRfm(0).has_value());
}

TEST(Hydra, EscalationMissesThenHitsTheCounterCache)
{
    HydraDefense h(DramConfig::ddr5Paper(), smallHydra());
    for (int i = 0; i < 3; ++i)
        h.onActivate(rowAddr(0), i); // Charge the group filter.

    // First escalated access: counter cache is cold -> a miss whose
    // fill is real DRAM traffic against the row's bank.
    h.onActivate(rowAddr(0), 10);
    EXPECT_EQ(h.ccMisses(), 1u);
    const auto fetch = h.pendingRfm(10);
    ASSERT_TRUE(fetch.has_value());
    EXPECT_EQ(fetch->kind, Command::kVrr);
    EXPECT_EQ(fetch->action, PreventiveActionKind::kCounterFetch);
    EXPECT_EQ(fetch->latency_override, smallHydra().fetch_latency);
    // Escalated rows start at the group threshold (never under-count).
    EXPECT_EQ(h.rowCount(rowAddr(0)), 4u);

    // Subsequent accesses hit the cache: no new traffic.
    h.onActivate(rowAddr(0), 11);
    EXPECT_EQ(h.ccHits(), 1u);
    EXPECT_EQ(h.ccMisses(), 1u);
    EXPECT_FALSE(h.pendingRfm(11).has_value());
}

TEST(Hydra, VrrAtRowThresholdResetsTheCount)
{
    HydraDefense h(DramConfig::ddr5Paper(), smallHydra());
    for (int i = 0; i < 3; ++i)
        h.onActivate(rowAddr(0), i);
    // Counts 4 and 5 accumulate; the 6th activation crosses the row
    // threshold and requests the victim refresh.
    h.onActivate(rowAddr(0), 10);
    (void)h.pendingRfm(10); // Drain the fill.
    h.onActivate(rowAddr(0), 11);
    EXPECT_FALSE(h.pendingRfm(11).has_value());
    h.onActivate(rowAddr(0), 12);
    const auto vrr = h.pendingRfm(12);
    ASSERT_TRUE(vrr.has_value());
    EXPECT_EQ(vrr->action, PreventiveActionKind::kVictimRefresh);
    EXPECT_EQ(vrr->target.row, 0u);
    EXPECT_EQ(h.rowCount(rowAddr(0)), 0u);
    EXPECT_EQ(h.vrrCount(), 1u);
}

TEST(Hydra, CounterCacheEvictsAndReMisses)
{
    HydraConfig cfg = smallHydra();
    cfg.cc_entries = 1; // Single-entry cache: eviction is deterministic.
    cfg.cc_ways = 1;
    HydraDefense h(DramConfig::ddr5Paper(), cfg);
    for (int i = 0; i < 3; ++i)
        h.onActivate(rowAddr(0), i);

    h.onActivate(rowAddr(0), 10); // Miss: fill row 0 (count 4).
    h.onActivate(rowAddr(0), 11); // Hit (count 5).
    h.onActivate(rowAddr(1), 12); // Miss: evicts row 0's line.
    h.onActivate(rowAddr(0), 13); // Miss again: row 0 was evicted.
    EXPECT_EQ(h.ccMisses(), 3u);
    EXPECT_EQ(h.ccHits(), 1u);
    // The authoritative count survived the eviction (RCT, not cache):
    // the re-missed access found 5, crossed the row threshold, and
    // triggered the VRR + reset.
    EXPECT_EQ(h.rowCount(rowAddr(0)), 0u);
    EXPECT_EQ(h.rowCount(rowAddr(1)), 4u);
}

TEST(Hydra, RefreshWindowResetDeEscalatesGroups)
{
    HydraConfig cfg = smallHydra();
    cfg.reset_period = 1000;
    HydraDefense h(DramConfig::ddr5Paper(), cfg);
    for (int i = 0; i < 4; ++i)
        h.onActivate(rowAddr(0), i); // Escalate + one miss.
    EXPECT_EQ(h.ccMisses(), 1u);
    EXPECT_EQ(h.rowCount(rowAddr(0)), 4u);

    // Next window: the group filter absorbs traffic again and the
    // per-row state is gone.
    h.onActivate(rowAddr(0), 2000);
    EXPECT_EQ(h.groupCount(rowAddr(0)), 1u);
    EXPECT_EQ(h.rowCount(rowAddr(0)), 0u);
    EXPECT_EQ(h.ccMisses(), 1u); // No cache traffic for a cold group.
}

// -------------------------------------------- zero-allocation contract

TEST(Tracker, SteadyStateDoesNotAllocate)
{
    const auto dram_cfg = DramConfig::ddr5Paper();
    GrapheneConfig gcfg;
    gcfg.threshold = 4;
    gcfg.table_entries = 8;
    GrapheneDefense graphene(dram_cfg, gcfg);
    HydraDefense hydra(dram_cfg, smallHydra());

    const auto churn = [&](int rounds) {
        for (int i = 0; i < rounds; ++i) {
            graphene.onActivate(rowAddr(10), i);
            graphene.onActivate(rowAddr(11), i);
            hydra.onActivate(rowAddr(10), i);
            hydra.onActivate(rowAddr(11), i);
            while (graphene.pendingRfm(i).has_value()) {
            }
            while (hydra.pendingRfm(i).has_value()) {
            }
        }
    };
    // Warm-up: escalate Hydra's groups, insert the rows into every
    // table, trigger and drain VRR/fetch cycles, and let the pending
    // ring reach its high-water mark.
    churn(256);

    const std::uint64_t before = leaky_test_heap_allocs.load();
    churn(4096); // Tracking, eviction scans, VRRs, fetches, drains.
    const std::uint64_t after = leaky_test_heap_allocs.load();
    EXPECT_EQ(after, before);
}

// ------------------------------------------------------------- factory

TEST(TrackerFactory, BuildsControllerSideBundles)
{
    const auto dram_cfg = DramConfig::ddr5Paper();
    for (const auto kind : {DefenseKind::kGraphene, DefenseKind::kHydra}) {
        DefenseSpec spec;
        spec.kind = kind;
        spec.nrh = 160;
        const auto bundle =
            leaky::defense::makeDefense(spec, dram_cfg, 80'000, nullptr);
        EXPECT_EQ(bundle.device, nullptr)
            << leaky::defense::defenseName(kind);
        EXPECT_NE(bundle.controller, nullptr)
            << leaky::defense::defenseName(kind);
        EXPECT_FALSE(bundle.deterministic_refresh);
    }
    EXPECT_STREQ(leaky::defense::defenseName(DefenseKind::kGraphene),
                 "Graphene");
    EXPECT_STREQ(leaky::defense::defenseName(DefenseKind::kHydra),
                 "Hydra");
}

TEST(TrackerFactory, ThresholdOverrideAndPolicyDerivation)
{
    EXPECT_EQ(leaky::defense::trackerThresholdFor(160), 80u);
    EXPECT_EQ(leaky::defense::trackerThresholdFor(1024), 512u);
    EXPECT_EQ(leaky::defense::trackerThresholdFor(8), 8u); // Floor.
    EXPECT_EQ(leaky::defense::hydraGroupThresholdFor(160), 40u);

    const leaky::dram::Timing timing;
    // W ~= 32 ms / 48 ns ~= 667 K activations; clamped to <= 256.
    EXPECT_EQ(leaky::defense::grapheneEntriesFor(64, timing), 256u);
    EXPECT_EQ(leaky::defense::grapheneEntriesFor(1024, timing), 256u);
}

// ----------------------------------------- figure determinism contract

class TrackerFigureInvariance
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TrackerFigureInvariance, SmokeCsvIsThreadCountInvariant)
{
    const auto *figure = leaky::runner::findFigure(GetParam());
    ASSERT_NE(figure, nullptr);
    leaky::runner::RunOptions opts;
    opts.smoke = true;
    const auto spec = figure->make(opts);
    const auto serial = leaky::runner::runSweep(spec, 1);
    const auto parallel = leaky::runner::runSweep(spec, 4);
    ASSERT_FALSE(serial.rows.empty());
    for (const auto &row : serial.rows)
        EXPECT_EQ(row.size(), spec.columns.size());
    EXPECT_EQ(serial.rows, parallel.rows);
    EXPECT_EQ(leaky::runner::toCsv(serial),
              leaky::runner::toCsv(parallel));
}

INSTANTIATE_TEST_SUITE_P(TrackerFigures, TrackerFigureInvariance,
                         ::testing::Values("cross-defense",
                                           "tracker-threshold"));

} // namespace
