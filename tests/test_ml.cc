/** @file ML toolkit tests: datasets, every classifier, metrics, CV. */

#include <gtest/gtest.h>

#include "ml/classifier.hh"
#include "ml/ensemble.hh"
#include "ml/linear.hh"
#include "ml/metrics.hh"
#include "ml/tree.hh"
#include "sim/rng.hh"

namespace {

using namespace leaky::ml;

/** Gaussian-ish blobs: K well-separated classes in 2-D. */
Dataset
blobs(int classes, int per_class, double spread, std::uint64_t seed)
{
    Dataset data;
    leaky::sim::Rng rng(seed);
    for (int c = 0; c < classes; ++c) {
        const double cx = (c % 4) * 10.0;
        const double cy = (c / 4) * 10.0;
        for (int i = 0; i < per_class; ++i) {
            const double jitter_x = (rng.uniform() - 0.5) * spread;
            const double jitter_y = (rng.uniform() - 0.5) * spread;
            data.add({cx + jitter_x, cy + jitter_y}, c);
        }
    }
    return data;
}

TEST(Dataset, StratifiedSplitKeepsClassBalance)
{
    const auto data = blobs(4, 40, 1.0, 1);
    const auto split = stratifiedSplit(data, 0.25, 7);
    EXPECT_EQ(split.test.size(), 40u);
    EXPECT_EQ(split.train.size(), 120u);
    std::vector<int> per_class(4, 0);
    for (int y : split.test.y)
        per_class[static_cast<std::size_t>(y)] += 1;
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(per_class[static_cast<std::size_t>(c)], 10);
}

TEST(Dataset, KFoldPartitionsEverything)
{
    const auto data = blobs(3, 30, 1.0, 2);
    const auto folds = kFold(data, 5, 3);
    ASSERT_EQ(folds.size(), 5u);
    std::size_t total_test = 0;
    for (const auto &fold : folds) {
        EXPECT_EQ(fold.train.size() + fold.test.size(), data.size());
        total_test += fold.test.size();
    }
    EXPECT_EQ(total_test, data.size());
}

TEST(Standardizer, ZeroMeanUnitVariance)
{
    Dataset data;
    data.add({1.0, 100.0}, 0);
    data.add({3.0, 300.0}, 0);
    data.add({5.0, 500.0}, 1);
    Standardizer scaler;
    scaler.fit(data);
    const auto scaled = scaler.apply(data);
    double mean0 = 0.0;
    for (const auto &row : scaled.x)
        mean0 += row[0];
    EXPECT_NEAR(mean0 / 3.0, 0.0, 1e-9);
}

/** Every Fig. 10 model must master well-separated blobs. */
class AllModels : public ::testing::TestWithParam<int>
{
};

TEST_P(AllModels, LearnSeparableBlobs)
{
    auto models = makeFig10Models(55);
    auto &model = models[static_cast<std::size_t>(GetParam())];
    const auto data = blobs(6, 30, 2.0, 11);
    const auto split = stratifiedSplit(data, 0.3, 5);
    model->fit(split.train);
    const auto cm = evaluate(*model, split.test);
    EXPECT_GT(cm.accuracy(), 0.85) << model->name();
}

INSTANTIATE_TEST_SUITE_P(Fig10Zoo, AllModels,
                         ::testing::Range(0, 8));

TEST(DecisionTree, PerfectlySeparableDataIsMemorised)
{
    Dataset data;
    for (int i = 0; i < 50; ++i)
        data.add({static_cast<double>(i)}, i < 25 ? 0 : 1);
    DecisionTree dt;
    dt.fit(data);
    const auto cm = evaluate(dt, data);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(DecisionTree, LearnsNonLinearXor)
{
    // XOR pattern is out of reach for linear models but easy for trees.
    Dataset data;
    leaky::sim::Rng rng(17);
    for (int i = 0; i < 400; ++i) {
        const double x = rng.uniform();
        const double y = rng.uniform();
        data.add({x, y}, (x > 0.5) != (y > 0.5) ? 1 : 0);
    }
    const auto split = stratifiedSplit(data, 0.25, 3);
    DecisionTree dt;
    dt.fit(split.train);
    EXPECT_GT(evaluate(dt, split.test).accuracy(), 0.9);

    LogisticRegression lr;
    lr.fit(split.train);
    EXPECT_LT(evaluate(lr, split.test).accuracy(), 0.75);
}

TEST(RandomForest, OutperformsSingleTreeOnNoisyData)
{
    const auto data = blobs(8, 40, 14.0, 23); // Heavily overlapping.
    const auto split = stratifiedSplit(data, 0.3, 9);
    TreeConfig tree_cfg;
    tree_cfg.max_depth = 30;
    DecisionTree dt(tree_cfg);
    dt.fit(split.train);
    RandomForest rf;
    rf.fit(split.train);
    const double dt_acc = evaluate(dt, split.test).accuracy();
    const double rf_acc = evaluate(rf, split.test).accuracy();
    EXPECT_GE(rf_acc + 0.05, dt_acc);
}

TEST(Knn, NearestNeighbourWinsOnBlobs)
{
    const auto data = blobs(4, 25, 3.0, 31);
    const auto split = stratifiedSplit(data, 0.2, 13);
    KNearestNeighbors knn(3);
    knn.fit(split.train);
    EXPECT_GT(evaluate(knn, split.test).accuracy(), 0.9);
}

TEST(ConfusionMatrix, MetricsOnHandComputedCase)
{
    ConfusionMatrix cm(2);
    // Class 0: 8 right, 2 wrong; class 1: 6 right, 4 wrong.
    for (int i = 0; i < 8; ++i)
        cm.add(0, 0);
    for (int i = 0; i < 2; ++i)
        cm.add(0, 1);
    for (int i = 0; i < 6; ++i)
        cm.add(1, 1);
    for (int i = 0; i < 4; ++i)
        cm.add(1, 0);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.7);
    // Precision: class0 = 8/12, class1 = 6/8 -> macro 0.708333.
    EXPECT_NEAR(cm.macroPrecision(), (8.0 / 12 + 6.0 / 8) / 2, 1e-9);
    // Recall: class0 = 0.8, class1 = 0.6 -> macro 0.7.
    EXPECT_NEAR(cm.macroRecall(), 0.7, 1e-9);
}

TEST(CrossValidation, RunsAllFoldsAndSummarises)
{
    const auto data = blobs(4, 30, 2.0, 41);
    const auto result = crossValidate(
        [] { return std::make_unique<DecisionTree>(); }, data, 5);
    EXPECT_EQ(result.folds, 5u);
    EXPECT_GT(result.accuracy.mean, 0.85);
    EXPECT_GE(result.f1.mean, 0.8);
    EXPECT_LT(result.accuracy.stddev, 0.2);
}

TEST(GradientBoosting, BeatsChanceOnOverlappingBlobs)
{
    const auto data = blobs(5, 40, 10.0, 51);
    const auto split = stratifiedSplit(data, 0.3, 19);
    GradientBoosting gb;
    gb.fit(split.train);
    EXPECT_GT(evaluate(gb, split.test).accuracy(), 0.4); // Chance 0.2.
}

TEST(AdaBoost, ImprovesOverWeakStumps)
{
    const auto data = blobs(3, 60, 6.0, 61);
    const auto split = stratifiedSplit(data, 0.3, 29);
    AdaBoostConfig cfg;
    cfg.max_depth = 1;
    AdaBoost ada(cfg);
    ada.fit(split.train);
    EXPECT_GT(evaluate(ada, split.test).accuracy(), 0.6); // Chance 1/3.
}

} // namespace
