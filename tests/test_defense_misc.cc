/** @file PARA, security policy, and defense-factory tests. */

#include <gtest/gtest.h>

#include "defense/factory.hh"
#include "defense/para.hh"
#include "defense/policy.hh"

namespace {

using leaky::defense::DefenseKind;
using leaky::defense::DefenseSpec;
using leaky::defense::ParaConfig;
using leaky::defense::ParaDefense;
using leaky::dram::DramConfig;

TEST(Para, RefreshRateMatchesProbability)
{
    ParaConfig cfg;
    cfg.probability = 0.05;
    cfg.seed = 3;
    ParaDefense para(cfg);
    leaky::ctrl::Address a;
    const int n = 20'000;
    int refreshes = 0;
    for (int i = 0; i < n; ++i) {
        para.onActivate(a, static_cast<leaky::sim::Tick>(i));
        if (para.pendingRfm(i).has_value())
            refreshes += 1;
    }
    EXPECT_NEAR(static_cast<double>(refreshes) / n, 0.05, 0.01);
}

TEST(Para, DeterministicPerSeed)
{
    ParaConfig cfg;
    cfg.probability = 0.1;
    cfg.seed = 42;
    ParaDefense a(cfg);
    ParaDefense b(cfg);
    leaky::ctrl::Address address;
    for (int i = 0; i < 1000; ++i) {
        a.onActivate(address, i);
        b.onActivate(address, i);
        EXPECT_EQ(a.pendingRfm(i).has_value(),
                  b.pendingRfm(i).has_value());
    }
}

TEST(Para, RequestsBlockOneBankOnly)
{
    ParaConfig cfg;
    cfg.probability = 1.0; // Always fire.
    ParaDefense para(cfg);
    leaky::ctrl::Address a;
    a.bankgroup = 2;
    a.bank = 3;
    para.onActivate(a, 0);
    const auto req = para.pendingRfm(0);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->kind, leaky::dram::Command::kRfmOneBank);
    EXPECT_EQ(req->target.bankgroup, 2u);
    EXPECT_EQ(req->target.bank, 3u);
    EXPECT_EQ(req->latency_override, cfg.refresh_latency);
}

TEST(Policy, NboIsEightyPercentOfNrh)
{
    EXPECT_EQ(leaky::defense::nboFor(1024), 819u);
    EXPECT_EQ(leaky::defense::nboFor(160), 128u); // Attack studies.
    EXPECT_EQ(leaky::defense::nboFor(64), 51u);
    EXPECT_EQ(leaky::defense::nboFor(10), 16u); // Floor.
}

TEST(Policy, TrfmTableMatchesDesign)
{
    EXPECT_EQ(leaky::defense::trfmFor(1024), 64u);
    EXPECT_EQ(leaky::defense::trfmFor(512), 32u);
    EXPECT_EQ(leaky::defense::trfmFor(256), 16u);
    EXPECT_EQ(leaky::defense::trfmFor(128), 4u);
    EXPECT_EQ(leaky::defense::trfmFor(64), 1u);
}

class RecordingSink final : public leaky::dram::AlertSink
{
  public:
    void raiseAlert(const leaky::dram::AlertInfo &) override {}
};

TEST(Factory, BuildsExpectedSides)
{
    const auto dram_cfg = DramConfig::ddr5Paper();
    RecordingSink sink;

    const auto check = [&](DefenseKind kind, bool device,
                           bool controller, bool det_ref) {
        DefenseSpec spec;
        spec.kind = kind;
        const auto bundle =
            leaky::defense::makeDefense(spec, dram_cfg, 80'000, &sink);
        EXPECT_EQ(bundle.device != nullptr, device)
            << leaky::defense::defenseName(kind);
        EXPECT_EQ(bundle.controller != nullptr, controller)
            << leaky::defense::defenseName(kind);
        EXPECT_EQ(bundle.deterministic_refresh, det_ref)
            << leaky::defense::defenseName(kind);
    };
    check(DefenseKind::kNone, false, false, false);
    check(DefenseKind::kPrac, true, false, false);
    check(DefenseKind::kPracRiac, true, false, false);
    check(DefenseKind::kPracBank, true, false, false);
    check(DefenseKind::kPrfm, false, true, false);
    check(DefenseKind::kFrRfm, false, true, true);
    check(DefenseKind::kPara, false, true, false);
}

TEST(Factory, NamesAreStable)
{
    EXPECT_STREQ(leaky::defense::defenseName(DefenseKind::kPrac),
                 "PRAC");
    EXPECT_STREQ(leaky::defense::defenseName(DefenseKind::kFrRfm),
                 "FR-RFM");
    EXPECT_STREQ(leaky::defense::defenseName(DefenseKind::kPracRiac),
                 "PRAC-RIAC");
}

} // namespace
