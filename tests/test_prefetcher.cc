/** @file Best-Offset prefetcher tests: stride learning. */

#include <gtest/gtest.h>

#include "sys/prefetcher.hh"

namespace {

using leaky::sys::BestOffsetPrefetcher;
using leaky::sys::PrefetcherConfig;

TEST(BestOffset, LearnsASimpleStride)
{
    BestOffsetPrefetcher pf;
    // Stream with stride 4: every miss at line 4k, fills train RR.
    std::uint64_t line = 1000;
    for (int i = 0; i < 3000; ++i) {
        pf.onDemandMiss(line);
        pf.onFill(line);
        line += 4;
    }
    EXPECT_EQ(pf.bestOffset(), 4);
    EXPECT_TRUE(pf.active());
}

TEST(BestOffset, PrefetchTargetsLinePlusOffset)
{
    BestOffsetPrefetcher pf;
    std::uint64_t line = 500;
    for (int i = 0; i < 3000; ++i) {
        pf.onDemandMiss(line);
        pf.onFill(line);
        line += 2;
    }
    ASSERT_EQ(pf.bestOffset(), 2);
    const auto target = pf.onDemandMiss(line);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, line + 2);
}

TEST(BestOffset, StrideChangeRelearns)
{
    BestOffsetPrefetcher pf;
    std::uint64_t line = 0;
    for (int i = 0; i < 3000; ++i) {
        pf.onDemandMiss(line);
        pf.onFill(line);
        line += 1;
    }
    EXPECT_EQ(pf.bestOffset(), 1);
    for (int i = 0; i < 6000; ++i) {
        pf.onDemandMiss(line);
        pf.onFill(line);
        line += 8;
    }
    EXPECT_EQ(pf.bestOffset(), 8);
}

TEST(BestOffset, CountsIssuedPrefetches)
{
    BestOffsetPrefetcher pf;
    for (int i = 0; i < 100; ++i)
        pf.onDemandMiss(static_cast<std::uint64_t>(i));
    EXPECT_GT(pf.issued(), 0u);
}

} // namespace
