/** @file Workload generator tests: SPEC-like traces and website
 *  traces (determinism, intensity targeting, site structure). */

#include <gtest/gtest.h>

#include <set>

#include "workload/synthetic.hh"
#include "workload/website.hh"

namespace {

using leaky::dram::AddressMapper;
using leaky::dram::Organization;
using leaky::workload::AppSpec;
using leaky::workload::Intensity;
using leaky::workload::WebsiteTraceConfig;

class WorkloadTest : public ::testing::Test
{
  protected:
    WorkloadTest() : mapper_(Organization{}, 1) {}
    AddressMapper mapper_;
};

TEST_F(WorkloadTest, TraceGenerationIsDeterministic)
{
    const auto app = leaky::workload::specLikeCatalog()[0];
    const auto a = leaky::workload::generateTrace(app, mapper_, 1000);
    const auto b = leaky::workload::generateTrace(app, mapper_, 1000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].non_mem_insts, b[i].non_mem_insts);
        EXPECT_EQ(a[i].is_write, b[i].is_write);
    }
}

TEST_F(WorkloadTest, MpkiControlsComputeDensity)
{
    AppSpec sparse;
    sparse.name = "sparse";
    sparse.mpki = 1.0;
    sparse.rbmpki = 0.5;
    AppSpec dense;
    dense.name = "dense";
    dense.mpki = 30.0;
    dense.rbmpki = 15.0;

    const auto t_sparse =
        leaky::workload::generateTrace(sparse, mapper_, 2000);
    const auto t_dense =
        leaky::workload::generateTrace(dense, mapper_, 2000);

    double sparse_insts = 0;
    double dense_insts = 0;
    for (std::size_t i = 0; i < 2000; ++i) {
        sparse_insts += t_sparse[i].non_mem_insts + 1;
        dense_insts += t_dense[i].non_mem_insts + 1;
    }
    // insts per access ~ 1000/mpki.
    EXPECT_NEAR(sparse_insts / 2000, 1000.0, 150.0);
    EXPECT_NEAR(dense_insts / 2000, 33.3, 8.0);
}

TEST_F(WorkloadTest, RbmpkiControlsRowSwitchRate)
{
    AppSpec app;
    app.name = "rb";
    app.mpki = 20.0;
    app.rbmpki = 5.0; // 4 accesses per row visit.
    const auto trace = leaky::workload::generateTrace(app, mapper_,
                                                      8000);
    std::size_t switches = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        const auto prev = mapper_.decode(trace[i - 1].addr);
        const auto cur = mapper_.decode(trace[i].addr);
        if (!prev.sameRow(cur))
            switches += 1;
    }
    const double per_access = static_cast<double>(switches) /
                              static_cast<double>(trace.size());
    EXPECT_NEAR(per_access, 5.0 / 20.0, 0.05);
}

TEST_F(WorkloadTest, CatalogSpansAllIntensities)
{
    for (auto level :
         {Intensity::kLow, Intensity::kMedium, Intensity::kHigh}) {
        const auto apps = leaky::workload::appsWithIntensity(level);
        EXPECT_GE(apps.size(), 3u)
            << leaky::workload::intensityName(level);
        for (const auto &app : apps)
            EXPECT_EQ(app.intensity(), level) << app.name;
    }
}

TEST_F(WorkloadTest, MixesAreSeededAndSized)
{
    const auto a = leaky::workload::makeMixes(10, 4, 42);
    const auto b = leaky::workload::makeMixes(10, 4, 42);
    ASSERT_EQ(a.size(), 10u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].apps.size(), 4u);
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(a[i].apps[c].name, b[i].apps[c].name);
    }
    const auto c = leaky::workload::makeMixes(10, 4, 43);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < 4; ++j)
            any_diff = any_diff ||
                       a[i].apps[j].name != c[i].apps[j].name;
    }
    EXPECT_TRUE(any_diff);
}

TEST_F(WorkloadTest, FortyWebsites)
{
    EXPECT_EQ(leaky::workload::websiteNames().size(), 40u);
    EXPECT_EQ(leaky::workload::websiteNames()[34], "wikipedia");
    EXPECT_EQ(leaky::workload::websiteNames()[38], "youtube");
}

TEST_F(WorkloadTest, WebsiteTraceDeterministicPerSiteAndLoad)
{
    WebsiteTraceConfig cfg;
    cfg.site = 3;
    cfg.load = 2;
    const auto a = leaky::workload::generateWebsiteTrace(cfg, mapper_);
    const auto b = leaky::workload::generateWebsiteTrace(cfg, mapper_);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 97)
        EXPECT_EQ(a[i].addr, b[i].addr);
}

TEST_F(WorkloadTest, LoadsOfOneSiteDifferButShareStructure)
{
    WebsiteTraceConfig cfg;
    cfg.site = 5;
    cfg.load = 0;
    const auto a = leaky::workload::generateWebsiteTrace(cfg, mapper_);
    cfg.load = 1;
    const auto b = leaky::workload::generateWebsiteTrace(cfg, mapper_);
    // Same phase skeleton: sizes within ~25% of each other.
    const double ratio = static_cast<double>(a.size()) /
                         static_cast<double>(b.size());
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 1.33);
    // But not identical records (jitter).
    EXPECT_NE(a.size(), b.size());
}

TEST_F(WorkloadTest, DifferentSitesTouchDifferentRows)
{
    const auto rows_of = [this](std::uint32_t site) {
        WebsiteTraceConfig cfg;
        cfg.site = site;
        std::set<std::uint32_t> rows;
        for (const auto &e :
             leaky::workload::generateWebsiteTrace(cfg, mapper_))
            rows.insert(mapper_.decode(e.addr).row);
        return rows;
    };
    const auto rows_a = rows_of(0);
    const auto rows_b = rows_of(1);
    std::size_t common = 0;
    for (auto r : rows_a)
        common += rows_b.count(r);
    // Only the shared startup phase (and incidental noise) overlaps.
    EXPECT_LT(static_cast<double>(common) /
                  static_cast<double>(rows_a.size()),
              0.5);
}

} // namespace
