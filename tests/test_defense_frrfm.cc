/** @file FR-RFM tests, including the §11.1 security property: RFM
 *  issue times are a fixed grid, independent of the access pattern. */

#include <gtest/gtest.h>

#include "attack/dram_addr.hh"
#include "defense/fr_rfm.hh"
#include "defense/policy.hh"
#include "sys/system.hh"

namespace {

using leaky::defense::DefenseKind;
using leaky::defense::FrRfmConfig;
using leaky::defense::FrRfmDefense;
using leaky::sim::Tick;

TEST(FrRfm, RequestsPreciseRfmOnGrid)
{
    FrRfmConfig cfg;
    cfg.period = 1'000'000;
    cfg.drain_lead = 80'000;
    FrRfmDefense defense(cfg);

    EXPECT_FALSE(defense.pendingRfm(0).has_value());
    EXPECT_EQ(defense.nextEventTick(0), 920'000u);

    const auto req = defense.pendingRfm(920'000);
    ASSERT_TRUE(req.has_value());
    EXPECT_TRUE(req->precise);
    EXPECT_TRUE(req->all_ranks);
    EXPECT_EQ(req->scheduled_at, 1'000'000u);

    // In flight: no second request until issued.
    EXPECT_FALSE(defense.pendingRfm(990'000).has_value());
    defense.onRfmIssued(*req, 1'000'000, 1'295'000);
    EXPECT_EQ(defense.nextEventTick(1'300'000), 2'000'000u - 80'000u);
}

TEST(FrRfm, OverrunSkipsSlotsWithoutDrifting)
{
    FrRfmConfig cfg;
    cfg.period = 100'000; // Shorter than the RFM window.
    cfg.drain_lead = 10'000;
    FrRfmDefense defense(cfg);
    auto req = defense.pendingRfm(95'000);
    ASSERT_TRUE(req.has_value());
    // Window ends way past several grid points.
    defense.onRfmIssued(*req, 100'000, 450'000);
    EXPECT_GT(defense.skippedSlots(), 0u);
    const auto next = defense.pendingRfm(495'000);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->scheduled_at % 100'000, 0u) << "grid drifted";
}

TEST(FrRfm, ActivationsAreIgnored)
{
    FrRfmConfig cfg;
    cfg.period = 1'000'000;
    FrRfmDefense defense(cfg);
    leaky::ctrl::Address a;
    for (int i = 0; i < 1000; ++i)
        defense.onActivate(a, static_cast<Tick>(i));
    EXPECT_FALSE(defense.pendingRfm(0).has_value());
}

TEST(FrRfmPolicy, PeriodScalesWithNrhAndClamps)
{
    leaky::dram::Timing t;
    const Tick lead = 80'000;
    // High thresholds: TRFM x tRC.
    EXPECT_EQ(leaky::defense::frRfmPeriodFor(1024, t, lead),
              64 * t.tRC);
    EXPECT_EQ(leaky::defense::frRfmPeriodFor(512, t, lead), 32 * t.tRC);
    // Ultra-low thresholds clamp at the physical floor.
    const Tick floor = t.tRFM + lead + 20'000;
    EXPECT_EQ(leaky::defense::frRfmPeriodFor(64, t, lead), floor);
}

/**
 * §11.1 security property, end to end: the RFM issue times on a system
 * running a hammering attacker equal those on an idle system, i.e.,
 * RespR[i] is independent of ReqS[i].
 */
TEST(FrRfmSecurity, RfmTimesIndependentOfTraffic)
{
    const auto run = [](bool with_traffic) {
        using namespace leaky;
        sys::SystemConfig cfg =
            sys::SystemConfig::paper(DefenseKind::kFrRfm, 1024);
        sys::System system(cfg);

        std::uint64_t served = 0;
        std::function<void()> hammer = [&] {
            const auto a = attack::rowAddress(
                system.mapper(), 0, 0, 0, 0,
                served % 2 ? 100u : 200u);
            system.issueRead(a, 0, [&](Tick) {
                served += 1;
                system.schedule(15'000, hammer);
            });
        };
        if (with_traffic)
            hammer();
        system.run(20 * sim::kMs);

        const auto *defense =
            dynamic_cast<const defense::FrRfmDefense *>(
                system.defenseBundle(0).controller.get());
        EXPECT_NE(defense, nullptr);
        return defense->issueTimes();
    };

    const auto idle_times = run(false);
    const auto busy_times = run(true);
    ASSERT_GT(idle_times.size(), 10u);
    ASSERT_EQ(idle_times.size(), busy_times.size());
    for (std::size_t i = 0; i < idle_times.size(); ++i) {
        EXPECT_EQ(idle_times[i], busy_times[i])
            << "RFM " << i << " leaked traffic timing";
    }
}

} // namespace
