/**
 * @file
 * Campaign-layer tests: shard-range geometry, fault-plan parsing, the
 * torn-tail tolerance of the append-only manifest, and the headline
 * robustness contracts — a campaign killed mid-shard (via the
 * fault-injection plan, in a real forked process) resumes to
 * completion with a merged CSV byte-identical to an uninterrupted
 * single-process run, for shard counts {1, 2, 4}; injected throws are
 * absorbed by bounded deterministic retry; persistent failures are
 * recorded and gate status/merge instead of poisoning the sweep; and
 * a stop request drains gracefully at a resumable checkpoint.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/fault.hh"
#include "campaign/manifest.hh"
#include "campaign/shard.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "sim/rng.hh"

namespace {

using namespace leaky;
using runner::Job;
using runner::JobRows;
using runner::SweepSpec;

/** Fresh per-test scratch directory under the system temp root. */
std::string
tempDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("leaky_campaign_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/**
 * The reference workload: 8 jobs, variable row counts (1-3 rows per
 * job), every cell derived from the per-job splitmix64 seed — any
 * scheduling, sharding, or resume bug shows up as a byte diff against
 * toCsv(runSweep(spec, 1)).
 */
SweepSpec
campaignSpec()
{
    SweepSpec spec;
    spec.name = "campaign-test";
    spec.base_seed = 77;
    spec.axes = {{"i", {0, 1, 2, 3, 4, 5, 6, 7}}};
    spec.columns = {"i", "sub", "draw"};
    spec.job = [](const Job &job) -> JobRows {
        sim::Rng rng(job.seed);
        JobRows rows;
        const int subs = static_cast<int>(job.param("i")) % 3 + 1;
        for (int sub = 0; sub < subs; ++sub)
            rows.push_back({job.param("i"),
                            static_cast<double>(sub), rng.uniform()});
        return rows;
    };
    return spec;
}

campaign::ManifestMeta
openFor(const SweepSpec &spec, std::size_t shards,
        const std::string &dir)
{
    const auto meta =
        campaign::makeMeta(spec, shards, "campaign.csv", "test");
    campaign::openCampaign(meta, dir);
    return meta;
}

campaign::CampaignConfig
configFor(const std::string &dir, unsigned threads = 2)
{
    campaign::CampaignConfig config;
    config.dir = dir;
    config.threads = threads;
    return config;
}

// -------------------------------------------------------------- shards

TEST(ShardRange, PartitionsTileTheIndexSpaceEvenly)
{
    for (std::size_t jobs : {0u, 1u, 5u, 8u, 13u, 100u}) {
        for (std::size_t shards : {1u, 2u, 3u, 4u, 7u}) {
            std::size_t covered = 0, min_size = jobs + 1, max_size = 0;
            std::size_t expected_begin = 0;
            for (std::size_t s = 0; s < shards; ++s) {
                const auto range =
                    campaign::shardRange(jobs, shards, s);
                EXPECT_EQ(range.begin, expected_begin);
                EXPECT_LE(range.begin, range.end);
                expected_begin = range.end;
                covered += range.size();
                min_size = std::min(min_size, range.size());
                max_size = std::max(max_size, range.size());
            }
            EXPECT_EQ(covered, jobs);
            EXPECT_EQ(expected_begin, jobs);
            if (jobs >= shards) {
                EXPECT_LE(max_size - min_size, 1u);
            }
        }
    }
}

// --------------------------------------------------------- fault plans

TEST(FaultPlan, ParsesTheThreeKindsAndRejectsJunk)
{
    campaign::FaultPlan plan;
    std::string error;

    ASSERT_TRUE(campaign::FaultPlan::parse("crash@3", &plan, &error));
    EXPECT_EQ(plan.kind, campaign::FaultKind::kCrash);
    EXPECT_EQ(plan.at_job, 3u);
    EXPECT_TRUE(plan.armed());

    ASSERT_TRUE(campaign::FaultPlan::parse("throw@1", &plan, &error));
    EXPECT_EQ(plan.kind, campaign::FaultKind::kThrow);

    ASSERT_TRUE(
        campaign::FaultPlan::parse("hang@2:250", &plan, &error));
    EXPECT_EQ(plan.kind, campaign::FaultKind::kHang);
    EXPECT_EQ(plan.at_job, 2u);
    EXPECT_EQ(plan.hang_ms, 250u);

    for (const char *bad :
         {"", "crash", "crash@", "crash@0", "crash@x", "melt@3",
          "crash@2:50", "hang@2:"}) {
        EXPECT_FALSE(campaign::FaultPlan::parse(bad, &plan, &error))
            << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

// ------------------------------------------------------------ manifest

TEST(Manifest, ReplaysRecordsAndToleratesTornTail)
{
    const auto dir = tempDir("manifest");
    const auto path = campaign::manifestPath(dir, 0);
    {
        campaign::ManifestWriter writer(path, 0, 1, 0, 4);
        writer.jobDone(0, {"1,2", "3,4"});
        writer.jobFailed(1, 3, "boom\nwith newline");
    }
    auto state = campaign::ManifestState::load(path);
    ASSERT_EQ(state.done.size(), 1u);
    EXPECT_EQ(state.done.at(0),
              (std::vector<std::string>{"1,2", "3,4"}));
    ASSERT_EQ(state.failed.size(), 1u);
    EXPECT_EQ(state.failed.at(1).attempts, 3u);
    // Newlines are sanitized: they would forge record boundaries.
    EXPECT_EQ(state.failed.at(1).message, "boom with newline");

    // A kill mid-append leaves a torn record: no ` ok` marker, no
    // newline. Replay must skip it, treating job 2 as never run.
    {
        std::ofstream torn(path, std::ios::binary | std::ios::app);
        torn << "done 2 1 9,9";
    }
    state = campaign::ManifestState::load(path);
    EXPECT_EQ(state.done.count(2), 0u);

    // Re-opening for append repairs the torn tail; fresh commits land
    // on their own lines and replay cleanly.
    {
        campaign::ManifestWriter writer(path, 0, 1, 0, 4);
        writer.jobDone(2, {"5,6"});
        writer.jobDone(1, {"7,8"}); // The failed job succeeds now.
    }
    state = campaign::ManifestState::load(path);
    EXPECT_EQ(state.done.at(2), (std::vector<std::string>{"5,6"}));
    EXPECT_EQ(state.done.at(1), (std::vector<std::string>{"7,8"}));
    EXPECT_TRUE(state.failed.empty());
    std::filesystem::remove_all(dir);
}

TEST(Manifest, MetaRoundTripsAndRefusesMismatchedResume)
{
    const auto spec = campaignSpec();
    const auto meta = campaign::makeMeta(spec, 2, "campaign.csv", "test");
    const auto parsed =
        campaign::ManifestMeta::parse(meta.serialize());
    EXPECT_EQ(parsed, meta);
    EXPECT_EQ(parsed.columns, spec.columns);
    EXPECT_EQ(parsed.jobs, 8u);

    const auto dir = tempDir("meta");
    campaign::openCampaign(meta, dir);
    campaign::openCampaign(meta, dir); // Identical resume: fine.
    auto other = meta;
    other.seed = 123; // Different seed would shear the results.
    EXPECT_THROW(campaign::openCampaign(other, dir),
                 std::runtime_error);
    std::filesystem::remove_all(dir);
}

// ------------------------------------------------- determinism contract

TEST(Campaign, MergedCsvIsShardCountInvariant)
{
    const auto spec = campaignSpec();
    const auto reference = runner::toCsv(runner::runSweep(spec, 1));
    for (std::size_t shards : {1u, 2u, 4u}) {
        const auto dir =
            tempDir("shards" + std::to_string(shards));
        const auto meta = openFor(spec, shards, dir);
        const auto config = configFor(dir);
        for (std::size_t s = 0; s < shards; ++s) {
            const auto report =
                campaign::runShard(spec, meta, config, s);
            EXPECT_TRUE(report.complete()) << shards << "/" << s;
            EXPECT_EQ(report.failed, 0u);
            EXPECT_TRUE(std::filesystem::exists(
                campaign::shardCsvPath(dir, s)));
        }
        const auto path = campaign::writeMergedCsv(dir);
        EXPECT_EQ(campaign::readFileOrThrow(path), reference)
            << shards << " shards";
        std::filesystem::remove_all(dir);
    }
}

// ----------------------------------------------------- fault isolation

TEST(Campaign, InjectedThrowIsAbsorbedByBoundedRetry)
{
    const auto spec = campaignSpec();
    const auto dir = tempDir("retry");
    const auto meta = openFor(spec, 1, dir);
    auto config = configFor(dir, 1);
    config.retries = 2;
    std::string error;
    ASSERT_TRUE(campaign::FaultPlan::parse("throw@2", &config.fault,
                                           &error));
    const auto report = campaign::runShard(spec, meta, config, 0);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(campaign::readFileOrThrow(campaign::writeMergedCsv(dir)),
              runner::toCsv(runner::runSweep(spec, 1)));
    std::filesystem::remove_all(dir);
}

TEST(Campaign, PersistentFailureIsRecordedAndGatesMerge)
{
    auto spec = campaignSpec();
    const auto good_job = spec.job;
    spec.job = [good_job](const Job &job) -> JobRows {
        if (job.param("i") == 3)
            throw std::runtime_error("deterministic bad cell");
        return good_job(job);
    };
    const auto dir = tempDir("failure");
    const auto meta = openFor(spec, 1, dir);
    auto config = configFor(dir, 2);
    config.retries = 1;

    const auto report = campaign::runShard(spec, meta, config, 0);
    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.completed, 7u);

    const auto status = campaign::campaignStatus(dir);
    EXPECT_FALSE(status.complete());
    EXPECT_EQ(status.done, 7u);
    EXPECT_EQ(status.failed, 1u);
    EXPECT_EQ(status.remaining, 0u);
    ASSERT_EQ(status.shards.at(0).failures.size(), 1u);
    const auto &fail = *status.shards.at(0).failures.begin();
    EXPECT_EQ(fail.first, 3u);
    EXPECT_EQ(fail.second.attempts, 2u);
    EXPECT_NE(fail.second.message.find("i=3"), std::string::npos);
    EXPECT_NE(fail.second.message.find("deterministic bad cell"),
              std::string::npos);
    EXPECT_THROW(campaign::mergedCsv(dir), std::runtime_error);

    // Resume re-attempts recorded failures: with the defect fixed
    // (same spec identity), the campaign completes and merges clean.
    const auto resumed =
        campaign::runShard(campaignSpec(), meta, configFor(dir), 0);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.ran, 1u);
    EXPECT_EQ(campaign::readFileOrThrow(campaign::writeMergedCsv(dir)),
              runner::toCsv(runner::runSweep(campaignSpec(), 1)));
    std::filesystem::remove_all(dir);
}

TEST(Campaign, DeadlineTurnsAHangIntoAFailedAttempt)
{
    const auto spec = campaignSpec();
    std::string error;

    // No retry budget: the hanging attempt is the job's only one.
    {
        const auto dir = tempDir("deadline");
        const auto meta = openFor(spec, 1, dir);
        auto config = configFor(dir, 1);
        config.retries = 0;
        config.deadline_ms = 5;
        ASSERT_TRUE(campaign::FaultPlan::parse("hang@1:100",
                                               &config.fault, &error));
        const auto report = campaign::runShard(spec, meta, config, 0);
        EXPECT_EQ(report.failed, 1u);
        EXPECT_EQ(report.completed, 7u);
        const auto status = campaign::campaignStatus(dir);
        ASSERT_EQ(status.failed, 1u);
        EXPECT_NE(status.shards.at(0)
                      .failures.begin()
                      ->second.message.find("deadline"),
                  std::string::npos);
        std::filesystem::remove_all(dir);
    }

    // With one retry the hang (which fires once) is recovered from.
    {
        const auto dir = tempDir("deadline_retry");
        const auto meta = openFor(spec, 1, dir);
        auto config = configFor(dir, 1);
        config.retries = 1;
        config.deadline_ms = 5;
        ASSERT_TRUE(campaign::FaultPlan::parse("hang@1:100",
                                               &config.fault, &error));
        const auto report = campaign::runShard(spec, meta, config, 0);
        EXPECT_TRUE(report.complete());
        EXPECT_EQ(report.failed, 0u);
        std::filesystem::remove_all(dir);
    }
}

// ---------------------------------------------------- graceful drain

TEST(Campaign, StopRequestDrainsAtACheckpointAndResumes)
{
    const auto spec = campaignSpec();
    const auto dir = tempDir("stop");
    const auto meta = openFor(spec, 1, dir);
    const auto config = configFor(dir);

    campaign::requestStop();
    const auto stopped = campaign::runShard(spec, meta, config, 0);
    campaign::clearStopRequest();
    EXPECT_TRUE(stopped.stopped);
    EXPECT_EQ(stopped.ran, 0u);
    EXPECT_EQ(stopped.skipped, 8u);
    EXPECT_FALSE(stopped.complete());

    const auto resumed = campaign::runShard(spec, meta, config, 0);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.ran, 8u);
    EXPECT_EQ(campaign::readFileOrThrow(campaign::writeMergedCsv(dir)),
              runner::toCsv(runner::runSweep(spec, 1)));
    std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ kill + resume

// The headline contract, with a real kill: the fault plan _Exit()s the
// forked child mid-shard (nothing unwound, nothing flushed beyond the
// per-job manifest commits), then the parent resumes the same
// directory and the merged CSV is byte-identical to an uninterrupted
// single-process single-thread run.
TEST(CampaignDeathTest, KilledShardResumesToByteIdenticalMerge)
{
    const auto spec = campaignSpec();
    const auto dir = tempDir("kill");
    const auto meta = openFor(spec, 2, dir);
    const auto config = configFor(dir, 1);

    auto crashing = config;
    std::string error;
    ASSERT_TRUE(campaign::FaultPlan::parse("crash@2", &crashing.fault,
                                           &error));
    EXPECT_EXIT(
        {
            campaign::runShard(spec, meta, crashing, 0);
            std::_Exit(0); // Fault failed to fire: wrong exit code.
        },
        ::testing::ExitedWithCode(campaign::kCrashExitCode), "");

    // The child committed exactly one job before dying mid-second.
    const auto partial = campaign::campaignStatus(dir);
    EXPECT_EQ(partial.done, 1u);
    EXPECT_EQ(partial.failed, 0u);
    EXPECT_EQ(partial.remaining, 7u);

    const auto resumed0 = campaign::runShard(spec, meta, config, 0);
    EXPECT_TRUE(resumed0.complete());
    EXPECT_EQ(resumed0.ran, 3u); // 4 owned, 1 survived the kill.
    const auto shard1 = campaign::runShard(spec, meta, config, 1);
    EXPECT_TRUE(shard1.complete());

    EXPECT_TRUE(campaign::campaignStatus(dir).complete());
    EXPECT_EQ(campaign::readFileOrThrow(campaign::writeMergedCsv(dir)),
              runner::toCsv(runner::runSweep(spec, 1)));
    std::filesystem::remove_all(dir);
}

} // namespace
