/**
 * @file
 * Pattern-fuzzer property suite (src/fuzz): grammar accept/reject
 * table with pinned error fragments (mirroring test_mapping.cc),
 * serialize -> parse -> replay round trips, seeded stream determinism
 * (same FuzzParams seed => byte-identical serialized pattern stream),
 * campaign determinism, the discovered-beats-baseline acceptance pin,
 * and a zero-allocation steady state for the fuzz hot loop.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/builder.hh"
#include "fuzz/campaign.hh"
#include "fuzz/pattern.hh"
#include "fuzz/replay.hh"
#include "testing_alloc_counter.hh"

namespace {

using namespace leaky;
using fuzz::Aggressor;
using fuzz::FuzzParams;
using fuzz::HammerPattern;
using fuzz::PatternBuilder;

// ------------------------------------------------------------ grammar

TEST(HammerPatternGrammar, AcceptTableAndCanonicalRoundTrip)
{
    // (input, canonical str()) — non-canonical inputs (no gap, fields
    // reordered) parse and re-render canonically; canonical inputs are
    // fixed points.
    const std::pair<const char *, const char *> accept[] = {
        {"hp1:period=1;gap=0;agg=0@1/0x1",
         "hp1:period=1;gap=0;agg=0@1/0x1"},
        {"hp1:period=2;agg=0@1/0x1",
         "hp1:period=2;gap=0;agg=0@1/0x1"},
        {"hp1:gap=500;period=4;agg=3@2/1x2",
         "hp1:period=4;gap=500;agg=3@2/1x2"},
        {"hp1:period=2;gap=0;agg=0@1/0x1;agg=1@1/1x1",
         "hp1:period=2;gap=0;agg=0@1/0x1;agg=1@1/1x1"},
        {"hp1:period=8;agg=0@4/1x3;agg=0@4/1x3", // Duplicate tuples OK.
         "hp1:period=8;gap=0;agg=0@4/1x3;agg=0@4/1x3"},
        {"hp1:period=256;gap=1000000;agg=31@256/0x16",
         "hp1:period=256;gap=1000000;agg=31@256/0x16"},
    };
    for (const auto &[input, canonical] : accept) {
        HammerPattern pattern;
        std::string error;
        ASSERT_TRUE(HammerPattern::tryParse(input, &pattern, &error))
            << input << ": " << error;
        EXPECT_EQ(pattern.str(), canonical) << input;

        // parse(str()) is the identity on the parsed value.
        HammerPattern again;
        ASSERT_TRUE(
            HammerPattern::tryParse(pattern.str(), &again, &error))
            << pattern.str() << ": " << error;
        EXPECT_EQ(again, pattern) << input;
        EXPECT_EQ(again.str(), canonical) << input;
    }
}

TEST(HammerPatternGrammar, RejectTablePinsErrorFragments)
{
    // (input, pinned fragment of the user-facing error).
    const std::pair<const char *, const char *> reject[] = {
        {"", "unknown pattern grammar"},
        {"hp2:period=1;agg=0@1/0x1", "unknown pattern grammar"},
        {"hp1:", "has no '='"},
        {"hp1:period", "has no '='"},
        {"hp1:period=1;agg=0@1/0x1;", "has no '='"},
        {"hp1:agg=0@1/0x1", "pattern needs a period"},
        {"hp1:period=0;agg=0@1/0x1", "period out of range (1..256)"},
        {"hp1:period=257;agg=0@1/0x1", "period out of range (1..256)"},
        {"hp1:period=1", "needs at least one aggressor"},
        {"hp1:period=1;gap=1000001;agg=0@1/0x1",
         "gap out of range (0..1000000 ticks)"},
        {"hp1:period=1;period=2;agg=0@1/0x1", "duplicate field 'period'"},
        {"hp1:period=1;gap=0;gap=0;agg=0@1/0x1",
         "duplicate field 'gap'"},
        {"hp1:period=1;bogus=3;agg=0@1/0x1", "unknown field 'bogus'"},
        {"hp1:period=x;agg=0@1/0x1",
         "expected an unsigned integer, got 'x'"},
        {"hp1:period=;agg=0@1/0x1",
         "expected an unsigned integer, got ''"},
        {"hp1:period=99999999999999;agg=0@1/0x1", "value out of range"},
        {"hp1:period=1;agg=0@1/0", "malformed aggressor"},
        {"hp1:period=1;agg=0-1-0-1", "malformed aggressor"},
        {"hp1:period=1;agg=32@1/0x1", "row index out of range (0..31)"},
        {"hp1:period=1;agg=0@0/0x1", "frequency must be positive"},
        {"hp1:period=4;agg=0@3/0x1",
         "frequency must divide the period (3 vs 4)"},
        {"hp1:period=4;agg=0@2/2x1",
         "phase must be below period/frequency (2 vs 2)"},
        {"hp1:period=1;agg=0@1/0x0", "amplitude out of range (1..16)"},
        {"hp1:period=1;agg=0@1/0x17", "amplitude out of range (1..16)"},
        {"hp1:period=256;agg=0@256/0x16;agg=1@256/0x1",
         "pattern too dense (> 4096 accesses per period)"},
    };
    for (const auto &[input, fragment] : reject) {
        HammerPattern pattern;
        std::string error;
        EXPECT_FALSE(HammerPattern::tryParse(input, &pattern, &error))
            << input;
        EXPECT_NE(error.find(fragment), std::string::npos)
            << input << " -> " << error;
    }
}

TEST(HammerPatternGrammar, TooManyAggressorsRejected)
{
    std::string text = "hp1:period=1";
    for (int i = 0; i < 17; ++i)
        text += ";agg=0@1/0x1";
    HammerPattern pattern;
    std::string error;
    EXPECT_FALSE(HammerPattern::tryParse(text, &pattern, &error));
    EXPECT_NE(error.find("too many aggressors (max 16)"),
              std::string::npos)
        << error;
}

TEST(HammerPattern, ExpandFollowsFrequencyPhaseAmplitude)
{
    // Period 4: row 0 every slot, row 1 at slots 1 and 3 (freq 2,
    // phase 1) doubled, row 2 once at slot 2.
    const auto p = HammerPattern::parse(
        "hp1:period=4;agg=0@4/0x1;agg=1@2/1x2;agg=2@1/2x1");
    EXPECT_EQ(p.rowCount(), 3u);
    EXPECT_EQ(p.accessesPerPeriod(), 4u + 4u + 1u);
    const std::vector<std::uint32_t> want = {0, 0, 1, 1, 0, 2, 0, 1, 1};
    EXPECT_EQ(p.expand(), want);
}

// ------------------------------------------- seeded stream properties

std::string
serializedStream(const FuzzParams &params, std::size_t count)
{
    PatternBuilder builder(params);
    std::string stream;
    for (std::size_t i = 0; i < count; ++i)
        stream += builder.generate(i).str() + "\n";
    return stream;
}

TEST(PatternBuilder, SameSeedSameByteStream)
{
    FuzzParams params;
    params.seed = 42;
    EXPECT_EQ(serializedStream(params, 64), serializedStream(params, 64));

    FuzzParams other = params;
    other.seed = 43;
    EXPECT_NE(serializedStream(params, 64), serializedStream(other, 64));
}

TEST(PatternBuilder, GeneratedPatternsAreValidAndRoundTrip)
{
    FuzzParams params;
    params.seed = 7;
    PatternBuilder builder(params);
    std::string error;
    for (std::size_t i = 0; i < 128; ++i) {
        const HammerPattern p = builder.generate(i);
        ASSERT_TRUE(p.validate(&error)) << i << ": " << error;
        EXPECT_EQ(HammerPattern::parse(p.str()), p) << i;
    }
}

TEST(PatternBuilder, GenerationIsRandomAccess)
{
    // Pattern #i only depends on (seed, i), not on what was generated
    // before — required for resumable/sharded searches.
    FuzzParams params;
    params.seed = 9;
    PatternBuilder builder(params);
    const HammerPattern p40 = builder.generate(40);
    for (std::size_t i = 0; i < 8; ++i)
        (void)builder.generate(i);
    EXPECT_EQ(builder.generate(40), p40);
}

TEST(PatternBuilder, MutationIsDeterministicAndValid)
{
    FuzzParams params;
    params.seed = 11;
    PatternBuilder builder(params);
    const HammerPattern src = builder.generate(0);
    std::string error;
    HammerPattern a, b;
    for (std::size_t i = 0; i < 64; ++i) {
        builder.mutateInto(src, i, &a);
        builder.mutateInto(src, i, &b);
        EXPECT_EQ(a, b) << i;
        ASSERT_TRUE(a.validate(&error)) << i << ": " << error;
    }
}

// --------------------------------------------------- replay round trip

TEST(Replayer, SerializedPatternReplaysByteIdentical)
{
    // serialize -> parse -> replay must produce the same CSV cells as
    // replaying the in-memory pattern: the serialization carries ALL
    // evaluation-relevant state.
    const HammerPattern original =
        HammerPattern::parse("hp1:period=2;gap=15000;agg=0@1/0x1;"
                             "agg=1@2/0x2");
    fuzz::EvalSpec spec;
    spec.defense = defense::DefenseKind::kGraphene;
    spec.message_bytes = 2;
    spec.seed = fuzz::evalSeedFor(1, spec.defense);

    const std::vector<double> direct = fuzz::replayRow(original, spec);
    const std::vector<double> reparsed =
        fuzz::replaySerialized(original.str(), spec);
    ASSERT_EQ(direct.size(), 5u);
    // Exact double equality, not tolerance: same pattern, same seed,
    // same cell => bit-identical simulation.
    EXPECT_EQ(direct, reparsed);
}

TEST(Replayer, CatalogueEntriesAreCanonicalAndOrdered)
{
    const auto &catalogue = fuzz::replayCatalogue();
    ASSERT_GE(catalogue.size(), 5u);
    std::set<std::string> names;
    bool seen_discovered = false;
    for (const auto &entry : catalogue) {
        EXPECT_TRUE(names.insert(entry.name).second) << entry.name;
        // Pinned texts parse, validate, and are canonical spellings.
        EXPECT_EQ(HammerPattern::parse(entry.text).str(), entry.text)
            << entry.name;
        // Baselines first, discoveries after (the figure's axis order).
        if (entry.discovered)
            seen_discovered = true;
        else
            EXPECT_FALSE(seen_discovered)
                << "baseline after discovered: " << entry.name;
    }
    EXPECT_TRUE(seen_discovered);
}

// ------------------------------------------------- campaign machinery

TEST(Campaign, SevenDefensesCovered)
{
    const auto &kinds = fuzz::campaignDefenses();
    EXPECT_EQ(kinds.size(), 7u);
    const std::set<defense::DefenseKind> unique(kinds.begin(),
                                                kinds.end());
    EXPECT_EQ(unique.size(), kinds.size());
    EXPECT_TRUE(unique.count(defense::DefenseKind::kGraphene));
    EXPECT_TRUE(unique.count(defense::DefenseKind::kHydra));
}

TEST(Campaign, RunsAreDeterministic)
{
    fuzz::CampaignConfig cfg;
    cfg.defense = defense::DefenseKind::kGraphene;
    cfg.population = 3;
    cfg.generations = 2;
    cfg.elites = 1;
    cfg.message_bytes = 2;
    cfg.params.seed = 5;
    cfg.eval_seed = fuzz::evalSeedFor(5, cfg.defense);

    const fuzz::CampaignResult a = fuzz::runCampaign(cfg);
    const fuzz::CampaignResult b = fuzz::runCampaign(cfg);
    ASSERT_EQ(a.stats.size(), 2u);
    ASSERT_EQ(b.stats.size(), 2u);
    for (std::size_t g = 0; g < a.stats.size(); ++g) {
        EXPECT_EQ(a.stats[g].generation, b.stats[g].generation);
        EXPECT_EQ(a.stats[g].best_score, b.stats[g].best_score);
        EXPECT_EQ(a.stats[g].mean_score, b.stats[g].mean_score);
    }
    EXPECT_EQ(a.best.pattern, b.best.pattern);
    EXPECT_EQ(a.best.score, b.best.score);
    // Elitism: the best score never degrades across generations.
    EXPECT_GE(a.stats[1].best_score, a.stats[0].best_score);
}

// ------------------------------------ acceptance: fuzzer beats baseline

TEST(Campaign, DiscoveredPatternBeatsEveryBaselineAgainstGraphene)
{
    // The pinned fuzz-graphene discovery achieves STRICTLY higher
    // covert capacity than every hand-written baseline against the
    // Graphene tracker at smoke scale — same cells as the fuzz-replay
    // figure (shared evalSeedFor rule, default base seed 1).
    fuzz::EvalSpec spec;
    spec.defense = defense::DefenseKind::kGraphene;
    spec.message_bytes = 4; // Smoke scale.
    spec.seed = fuzz::evalSeedFor(1, spec.defense);

    double best_baseline = 0.0;
    double discovered = 0.0;
    for (const auto &entry : fuzz::replayCatalogue()) {
        if (!entry.discovered) {
            const auto r = fuzz::evaluatePattern(
                HammerPattern::parse(entry.text), spec);
            best_baseline = std::max(best_baseline, r.channel.capacity);
        } else if (entry.name == "fuzz-graphene") {
            const auto r = fuzz::evaluatePattern(
                HammerPattern::parse(entry.text), spec);
            discovered = r.channel.capacity;
            EXPECT_EQ(r.channel.symbol_error, 0.0);
        }
    }
    EXPECT_GT(best_baseline, 0.0);
    EXPECT_GT(discovered, best_baseline);
}

// ------------------------------------------ zero-allocation hot loop

TEST(FuzzHotLoop, MutationExpansionAndScoringAreAllocationFree)
{
    FuzzParams params;
    params.seed = 13;
    PatternBuilder builder(params);
    const HammerPattern src = builder.generate(0);

    HammerPattern scratch;
    scratch.aggressors.reserve(HammerPattern::kMaxAggressors);
    std::vector<std::uint32_t> slots;
    slots.reserve(HammerPattern::kMaxAccesses);

    // A representative scored result (built before the pinned region;
    // scoring itself is pure arithmetic over it).
    attack::ChannelResult result;
    result.sent = {1, 0, 1, 0};
    result.received = {1, 0, 0, 0};
    result.capacity = 40'000.0;
    result.targeted_refreshes = 72;

    auto iterate = [&](std::size_t i) {
        builder.mutateInto(src, i, &scratch);
        scratch.expandInto(&slots);
        return fuzz::scoreResult(result) +
               static_cast<double>(slots.size());
    };

    // Warm up every mutation arm so vectors reach steady capacity.
    double sink = 0.0;
    for (std::size_t i = 0; i < 64; ++i)
        sink += iterate(i);

    const std::uint64_t before = leaky_test_heap_allocs.load();
    for (std::size_t i = 0; i < 512; ++i)
        sink += iterate(i);
    const std::uint64_t after = leaky_test_heap_allocs.load();
    EXPECT_EQ(after, before) << "fuzz hot loop allocated";
    EXPECT_GT(sink, 0.0);
}

} // namespace
