/** @file Fingerprinting (Listing 2) and counter-leak (§9.1) tests. */

#include <gtest/gtest.h>

#include "attack/counter_leak.hh"
#include "attack/dram_addr.hh"
#include "attack/fingerprint.hh"
#include "core/experiments.hh"

namespace {

using namespace leaky;

TEST(FingerprintProbe, DoesNotTriggerBackoffsOnItsOwn)
{
    // Listing 2's whole point: T < NBO accesses per row visit keep the
    // probe's own counters below the threshold.
    sys::System system(core::pracAttackSystem());
    attack::FingerprintConfig cfg;
    cfg.rows = attack::rowsInBank(system.mapper(), 0, 1, 7, 3, 500, 8,
                                  64);
    cfg.t_accesses = 100; // < NBO=128.
    cfg.duration = 500 * sim::kUs;
    cfg.classifier =
        attack::LatencyClassifier::forTiming(dram::Timing{});
    attack::FingerprintProbe probe(system, cfg);
    bool done = false;
    probe.start([&done] { done = true; });
    while (!done)
        system.run(sim::kMs);

    EXPECT_EQ(system.controller(0).stats().backoffs, 0u);
    EXPECT_TRUE(probe.backoffTimes().empty());
    EXPECT_GT(probe.accessCount(), 1000u);
}

TEST(FingerprintProbe, ObservesVictimBackoffsChannelWide)
{
    // A hammering "victim" in a different bank: the probe sees its
    // back-offs because PRAC blocks the whole channel.
    sys::System system(core::pracAttackSystem());

    std::uint64_t served = 0;
    std::function<void()> victim = [&] {
        const auto a = attack::rowAddress(system.mapper(), 0, 0, 0, 0,
                                          served % 2 ? 100u : 200u);
        system.issueRead(a, 7, [&](sim::Tick) {
            served += 1;
            system.schedule(15'000, victim);
        });
    };
    victim();

    attack::FingerprintConfig cfg;
    cfg.rows = attack::rowsInBank(system.mapper(), 0, 1, 7, 3, 500, 8,
                                  64);
    cfg.t_accesses = 100;
    cfg.duration = 500 * sim::kUs;
    cfg.classifier =
        attack::LatencyClassifier::forTiming(dram::Timing{});
    attack::FingerprintProbe probe(system, cfg);
    bool done = false;
    probe.start([&done] { done = true; });
    while (!done)
        system.run(sim::kMs);

    EXPECT_GE(system.controller(0).stats().backoffs, 10u);
    // The probe catches most of them.
    EXPECT_GE(probe.backoffTimes().size(),
              system.controller(0).stats().backoffs / 2);
}

TEST(Features, FixedDimensionality)
{
    const auto a = attack::extractFeatures({}, sim::kMs, 32);
    const auto b = attack::extractFeatures(
        {100, 5000, 90'000, 1'000'000}, sim::kMs, 32);
    EXPECT_EQ(a.values.size(), 32u + 7u);
    EXPECT_EQ(a.values.size(), b.values.size());
}

TEST(Features, WindowCountsLandInRightBuckets)
{
    const sim::Tick duration = 1000;
    // 4 windows of 250 ticks each.
    const auto f = attack::extractFeatures({10, 260, 270, 900},
                                           duration, 4);
    EXPECT_DOUBLE_EQ(f.values[0], 1.0);
    EXPECT_DOUBLE_EQ(f.values[1], 2.0);
    EXPECT_DOUBLE_EQ(f.values[2], 0.0);
    EXPECT_DOUBLE_EQ(f.values[3], 1.0);
    // Total count is the last feature.
    EXPECT_DOUBLE_EQ(f.values.back(), 4.0);
}

TEST(Fingerprints, SameSiteCloserThanDifferentSites)
{
    core::FingerprintSpec spec;
    spec.duration = 2 * sim::kMs;
    const auto a0 = core::collectOneFingerprint(spec, 2, 0);
    const auto a1 = core::collectOneFingerprint(spec, 2, 1);
    const auto b0 = core::collectOneFingerprint(spec, 17, 0);

    EXPECT_GT(a0.backoff_times.size(), 3u)
        << "site traces should trigger back-offs";

    const auto dist = [](const core::FingerprintSample &x,
                         const core::FingerprintSample &y) {
        const auto fx =
            attack::extractFeatures(x.backoff_times, x.duration, 16);
        const auto fy =
            attack::extractFeatures(y.backoff_times, y.duration, 16);
        double d = 0.0;
        for (std::size_t i = 0; i < 16; ++i) { // Window counts only.
            const double diff = fx.values[i] - fy.values[i];
            d += diff * diff;
        }
        return d;
    };
    EXPECT_LT(dist(a0, a1), dist(a0, b0));
}

TEST(CounterLeak, RecoversSecretWithinTwoCounts)
{
    for (std::uint32_t secret : {5u, 30u, 64u, 100u}) {
        sys::SystemConfig cfg = core::pracAttackSystem();
        sys::System system(cfg);
        const auto shared =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1000);
        attack::CounterLeakConfig leak_cfg;
        leak_cfg.shared_addr = shared;
        leak_cfg.conflict_addr =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 3000);
        leak_cfg.nbo = 128;
        leak_cfg.classifier =
            attack::LatencyClassifier::forTiming(dram::Timing{});

        attack::CounterLeakVictim victim(
            system, shared,
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 2000));
        attack::CounterLeakAttacker attacker(system, leak_cfg);

        attack::CounterLeakResult result;
        bool done = false;
        victim.prime(secret, [&] {
            attacker.leak([&](const attack::CounterLeakResult &r) {
                result = r;
                done = true;
            });
        });
        while (!done)
            system.run(sim::kMs);

        EXPECT_NEAR(static_cast<double>(result.leaked_count),
                    static_cast<double>(secret), 2.0)
            << "secret=" << secret;
        EXPECT_GT(result.throughput, 100'000.0); // >100 Kbps.
        EXPECT_DOUBLE_EQ(result.bits, 7.0);
    }
}

} // namespace
