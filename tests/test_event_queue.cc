/** @file EventQueue unit tests: ordering, cancellation, time limits. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using leaky::sim::EventQueue;
using leaky::sim::kTickMax;
using leaky::sim::Tick;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextEventTick(), kTickMax);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int fired = 0;
    const auto handle = eq.schedule(10, [&] { fired += 1; });
    eq.schedule(20, [&] { fired += 10; });
    EXPECT_TRUE(eq.cancel(handle));
    EXPECT_FALSE(eq.cancel(handle)); // Second cancel is a no-op.
    eq.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, RunUntilStopsAtLimitAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { fired += 1; });
    eq.schedule(100, [&] { fired += 1; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        depth += 1;
        if (depth < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(7, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 107u);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue eq;
    const auto h1 = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.cancel(h1);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}

} // namespace
