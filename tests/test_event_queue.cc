/**
 * @file
 * EventQueue unit tests: ordering, cancellation, time limits, plus the
 * intrusive-kernel semantics -- generation-counted handles across slab
 * reuse, member-bound events rescheduling themselves from their own
 * callbacks, pool growth, and the zero-allocation steady-state
 * invariant (verified by a test-binary-wide operator new counter).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "testing_alloc_counter.hh"

/** Allocation counter: this replaces the global allocator for the whole
 *  test binary, so tests can assert that a code region allocates
 *  nothing (other suites read it through testing_alloc_counter.hh).
 *  Single-threaded counting is fine for this binary. */
std::atomic<std::uint64_t> leaky_test_heap_allocs{0};

// GCC pairs the replacement operator new with the library operator
// delete and (wrongly) flags the malloc/free routing below.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    leaky_test_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

using leaky::sim::Event;
using leaky::sim::EventQueue;
using leaky::sim::kNoEvent;
using leaky::sim::kTickMax;
using leaky::sim::memberEvent;
using leaky::sim::SmallFn;
using leaky::sim::Tick;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextEventTick(), kTickMax);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int fired = 0;
    const auto handle = eq.schedule(10, [&] { fired += 1; });
    eq.schedule(20, [&] { fired += 10; });
    EXPECT_TRUE(eq.cancel(handle));
    EXPECT_FALSE(eq.cancel(handle)); // Second cancel is a no-op.
    eq.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, RunUntilStopsAtLimitAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { fired += 1; });
    eq.schedule(100, [&] { fired += 1; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        depth += 1;
        if (depth < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(7, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 107u);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue eq;
    const auto h1 = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.cancel(h1);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}

// ---------------------------------------------------------------------
// Intrusive-kernel semantics.

TEST(EventQueue, StaleHandleAfterExecutionCannotCancel)
{
    EventQueue eq;
    int fired = 0;
    const auto h1 = eq.schedule(10, [&] { fired += 1; });
    eq.run();
    EXPECT_EQ(fired, 1);
    // h1's slot is free now; its generation is stale.
    EXPECT_FALSE(eq.cancel(h1));

    // The freed slot is reused (LIFO free list) for the next event; the
    // stale handle must neither cancel it nor alias it.
    const auto h2 = eq.schedule(20, [&] { fired += 10; });
    EXPECT_NE(h1, h2);
    EXPECT_FALSE(eq.cancel(h1));
    eq.run();
    EXPECT_EQ(fired, 11);
}

TEST(EventQueue, StaleHandleAfterCancelDoesNotAliasReusedSlot)
{
    EventQueue eq;
    int fired = 0;
    const auto h1 = eq.schedule(10, [&] { fired += 1; });
    EXPECT_TRUE(eq.cancel(h1));
    const auto h2 = eq.schedule(10, [&] { fired += 10; });
    EXPECT_FALSE(eq.cancel(h1)); // Stale generation on a reused slot.
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_FALSE(eq.cancel(h2)); // Executed handles are stale too.
}

TEST(EventQueue, SameTickFifoOrderSurvivesSlabReuse)
{
    EventQueue eq;
    // Churn the free list so the same-tick events below land in
    // shuffled slab slots: slot order must not leak into run order.
    std::vector<leaky::sim::EventHandle> churn;
    for (int i = 0; i < 40; ++i)
        churn.push_back(eq.schedule(5, [] {}));
    for (int i = 0; i < 40; i += 2)
        eq.cancel(churn[static_cast<std::size_t>(i)]);

    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PoolGrowsPastInitialCapacity)
{
    EventQueue eq;
    EXPECT_EQ(eq.poolCapacity(), 0u);
    std::uint64_t fired = 0;
    constexpr int kEvents = 3000; // > several growth chunks
    for (int i = 0; i < kEvents; ++i)
        eq.schedule(static_cast<Tick>(i), [&fired] { fired += 1; });
    EXPECT_GE(eq.poolCapacity(), static_cast<std::size_t>(kEvents));
    EXPECT_EQ(eq.size(), static_cast<std::size_t>(kEvents));
    eq.run();
    EXPECT_EQ(fired, static_cast<std::uint64_t>(kEvents));
    EXPECT_GE(eq.kernelStats().pool_chunks, 2u);
}

struct SelfTicker {
    explicit SelfTicker(EventQueue &q)
        : eq(q), ev(memberEvent<&SelfTicker::tick>(this))
    {
    }

    void
    tick()
    {
        ticks += 1;
        last_at = eq.now();
        if (ticks < limit)
            eq.scheduleAfter(ev, 10);
    }

    EventQueue &eq;
    Event ev;
    int ticks = 0;
    int limit = 0;
    Tick last_at = 0;
};

TEST(EventQueue, BoundEventReschedulesItselfFromCallback)
{
    EventQueue eq;
    SelfTicker ticker(eq);
    ticker.limit = 5;
    eq.schedule(ticker.ev, 0);
    EXPECT_TRUE(ticker.ev.scheduled());
    eq.run();
    EXPECT_EQ(ticker.ticks, 5);
    EXPECT_EQ(ticker.last_at, 40u);
    EXPECT_FALSE(ticker.ev.scheduled());
}

TEST(EventQueue, RescheduleMovesAPendingBoundEvent)
{
    EventQueue eq;
    SelfTicker ticker(eq);
    ticker.limit = 1;
    eq.schedule(ticker.ev, 100);
    eq.reschedule(ticker.ev, 30);
    EXPECT_EQ(ticker.ev.when(), 30u);
    eq.run();
    EXPECT_EQ(ticker.ticks, 1);
    EXPECT_EQ(ticker.last_at, 30u);
    EXPECT_EQ(eq.now(), 30u); // The stale 100-tick entry is skipped.
}

TEST(EventQueue, DescheduledBoundEventDoesNotFire)
{
    EventQueue eq;
    SelfTicker ticker(eq);
    ticker.limit = 1;
    eq.schedule(ticker.ev, 10);
    EXPECT_TRUE(eq.deschedule(ticker.ev));
    EXPECT_FALSE(eq.deschedule(ticker.ev)); // Second is a no-op.
    eq.run();
    EXPECT_EQ(ticker.ticks, 0);
}

TEST(EventQueue, BoundEventDestructorDeschedules)
{
    EventQueue eq;
    int fired = 0;
    {
        SelfTicker ticker(eq);
        ticker.limit = 1;
        eq.schedule(ticker.ev, 10);
        eq.schedule(20, [&fired] { fired += 1; });
    }
    eq.run(); // The destroyed ticker's occurrence must not run.
    EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------------------
// Zero-allocation steady state.

TEST(EventQueue, SteadyStateSchedulingDoesNotAllocate)
{
    EventQueue eq;
    SelfTicker ticker(eq);
    std::uint64_t counter = 0;

    // Warm-up: grow the slab and the heap past the steady-state
    // high-water mark (1001 simultaneously live events below).
    for (int i = 0; i < 1200; ++i)
        eq.scheduleAfter(static_cast<Tick>(i % 31), [&counter] {
            counter += 1;
        });
    eq.run();

    // Steady state: a self-rescheduling bound event plus one-shot
    // lambdas with small captures, mirroring the controller's tick /
    // completion pattern. None of this may touch the heap.
    ticker.limit = 1000;
    const std::uint64_t allocs_before = leaky_test_heap_allocs.load();
    eq.schedule(ticker.ev, eq.now());
    for (int i = 0; i < 1000; ++i)
        eq.scheduleAfter(static_cast<Tick>(i % 31), [&counter] {
            counter += 1;
        });
    eq.run();
    const std::uint64_t allocs_after = leaky_test_heap_allocs.load();

    EXPECT_EQ(allocs_after, allocs_before);
    EXPECT_EQ(ticker.ticks, 1000);
    EXPECT_EQ(counter, 2200u);
    EXPECT_EQ(eq.kernelStats().one_shot_spills, 0u);
}

// ---------------------------------------------------------------------
// Property-based differential test: the production kernel (timing wheel
// + heap fallback) against a naive reference model that simply sorts
// pending events by (tick, schedule-seq). Random schedules spanning
// every wheel level (including the beyond-horizon heap route), random
// cancellations, and partial runUntil() slices must all reproduce the
// reference fire order exactly — same-tick ties included.

TEST(EventQueueProperty, WheelMatchesReferenceHeapOrder)
{
    leaky::sim::Rng rng(0xC0FFEE);
    const auto rnd = [&rng](std::uint64_t bound) {
        return rng.below(bound);
    };
    // Delta magnitudes chosen to hit wheel levels 0..5 and the heap
    // fallback (one full horizon past wheel_now_).
    static constexpr Tick kSpans[] = {
        1, 7, 60, 250, 3000, 70'000, Tick{1} << 20, Tick{1} << 49,
    };

    std::uint64_t wheel_total = 0;
    std::uint64_t heap_total = 0;
    for (int round = 0; round < 10; ++round) {
        EventQueue eq;
        struct Pending {
            Tick when;
            std::uint64_t seq; ///< Global schedule order (tie-break).
            int id;
            leaky::sim::EventHandle handle;
        };
        std::vector<Pending> model;
        std::vector<int> fired;
        std::vector<int> expected;
        std::uint64_t seq = 0;
        int next_id = 0;

        const auto byOrder = [](const Pending &a, const Pending &b) {
            return a.when != b.when ? a.when < b.when : a.seq < b.seq;
        };
        const auto drainModel = [&](Tick limit) {
            std::vector<Pending> due;
            for (std::size_t i = 0; i < model.size();) {
                if (model[i].when <= limit) {
                    due.push_back(model[i]);
                    model.erase(model.begin() +
                                static_cast<std::ptrdiff_t>(i));
                } else {
                    ++i;
                }
            }
            std::sort(due.begin(), due.end(), byOrder);
            for (const Pending &p : due)
                expected.push_back(p.id);
        };

        for (int step = 0; step < 300; ++step) {
            const std::uint64_t op = rnd(100);
            if (op < 60 || model.empty()) {
                // Burst of one-shots; small spans collide on one tick
                // often, exercising the same-tick seq order.
                const int burst = 1 + static_cast<int>(rnd(8));
                for (int b = 0; b < burst; ++b) {
                    const Tick span = kSpans[rnd(std::size(kSpans))];
                    const Tick when = eq.now() + rnd(span + 1);
                    const int id = next_id++;
                    const auto h = eq.schedule(
                        when, [&fired, id] { fired.push_back(id); });
                    model.push_back({when, seq++, id, h});
                }
            } else if (op < 80) {
                const std::size_t k = rnd(model.size());
                EXPECT_TRUE(eq.cancel(model[k].handle));
                model.erase(model.begin() +
                            static_cast<std::ptrdiff_t>(k));
            } else {
                // Run a slice ending at a pending deadline plus random
                // slack, so limits land both on and between events.
                const std::size_t k = rnd(model.size());
                const Tick limit = model[k].when + rnd(64);
                eq.runUntil(limit);
                drainModel(limit);
                ASSERT_EQ(fired, expected) << "round " << round
                                           << " step " << step;
            }
        }
        eq.run();
        drainModel(kTickMax);
        ASSERT_EQ(fired, expected) << "round " << round;
        EXPECT_TRUE(eq.empty());
        wheel_total += eq.kernelStats().wheel_events;
        heap_total += eq.kernelStats().heap_events;
    }
    // The generator must have exercised both routing paths.
    EXPECT_GT(wheel_total, 0u);
    EXPECT_GT(heap_total, 0u);
}

TEST(EventQueue, OversizedCapturesSpillAndAreCounted)
{
    EventQueue eq;
    // A capture bigger than SmallFn's inline buffer must still work --
    // it spills to the heap and is counted.
    struct Big {
        unsigned char payload[SmallFn::kInlineBytes + 16] = {};
    } big;
    big.payload[0] = 7;
    int seen = 0;
    eq.schedule(5, [big, &seen] { seen = big.payload[0]; });
    EXPECT_EQ(eq.kernelStats().one_shot_spills, 1u);
    eq.run();
    EXPECT_EQ(seen, 7);
}

} // namespace
