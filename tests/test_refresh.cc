/** @file RefreshManager accounting tests. */

#include <gtest/gtest.h>

#include "ctrl/refresh.hh"

namespace {

using leaky::ctrl::RefreshManager;

TEST(RefreshManager, NothingOwedBeforeFirstInterval)
{
    RefreshManager rm(3'900'000);
    rm.update(3'899'999);
    EXPECT_EQ(rm.owed(), 0u);
    EXPECT_FALSE(rm.canRefresh());
    EXPECT_FALSE(rm.mustRefresh());
}

TEST(RefreshManager, OneOwedPerInterval)
{
    RefreshManager rm(1000);
    rm.update(1000);
    EXPECT_EQ(rm.owed(), 1u);
    EXPECT_TRUE(rm.canRefresh());
    EXPECT_FALSE(rm.mustRefresh()); // Postponing by one allowed.
    rm.update(2000);
    EXPECT_EQ(rm.owed(), 2u);
    EXPECT_TRUE(rm.mustRefresh());
}

TEST(RefreshManager, LargeJumpAccruesAll)
{
    RefreshManager rm(1000);
    rm.update(5500);
    EXPECT_EQ(rm.owed(), 5u);
}

TEST(RefreshManager, IssuingReducesOwed)
{
    RefreshManager rm(1000);
    rm.update(2000);
    rm.onRefIssued();
    EXPECT_EQ(rm.owed(), 1u);
    rm.onRefIssued();
    EXPECT_EQ(rm.owed(), 0u);
    rm.onRefIssued(); // No underflow.
    EXPECT_EQ(rm.owed(), 0u);
}

TEST(RefreshManager, NextDueAdvances)
{
    RefreshManager rm(1000);
    EXPECT_EQ(rm.nextDue(), 1000u);
    rm.update(1000);
    EXPECT_EQ(rm.nextDue(), 2000u);
}

TEST(RefreshManager, NoPostponingModeForcesImmediately)
{
    RefreshManager rm(1000, /*max_postponed=*/1);
    rm.update(1000);
    EXPECT_TRUE(rm.mustRefresh());
}

} // namespace
