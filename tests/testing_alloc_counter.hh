/**
 * @file
 * Shared handle on the test binary's global allocation counter. The
 * counting `operator new` replacement lives in test_event_queue.cc
 * (there can only be one per binary); any suite asserting a
 * zero-allocation steady state reads this counter around the region
 * under test.
 */

#ifndef LEAKY_TESTS_TESTING_ALLOC_COUNTER_HH
#define LEAKY_TESTS_TESTING_ALLOC_COUNTER_HH

#include <atomic>
#include <cstdint>

/** Total calls into the replaced global operator new. */
extern std::atomic<std::uint64_t> leaky_test_heap_allocs;

#endif // LEAKY_TESTS_TESTING_ALLOC_COUNTER_HH
