/** @file TraceCore tests: IPC behaviour, MSHR limits, budgets. */

#include <gtest/gtest.h>

#include "defense/factory.hh"
#include "sys/core.hh"
#include "sys/system.hh"

namespace {

using leaky::defense::DefenseKind;
using leaky::sim::Tick;
using leaky::sys::CoreConfig;
using leaky::sys::System;
using leaky::sys::SystemConfig;
using leaky::sys::TraceCore;
using leaky::sys::TraceEntry;

std::vector<TraceEntry>
computeTrace(std::uint32_t non_mem, std::size_t records)
{
    // Loads are spaced by `non_mem` instructions; addresses walk rows
    // so they miss the caches.
    std::vector<TraceEntry> trace;
    for (std::size_t i = 0; i < records; ++i) {
        TraceEntry e;
        e.non_mem_insts = non_mem;
        e.addr = (i * 8192 + 64) % (1ull << 32);
        trace.push_back(e);
    }
    return trace;
}

class TraceCoreTest : public ::testing::Test
{
  protected:
    TraceCoreTest()
        : system_(SystemConfig::paper(DefenseKind::kNone))
    {
    }

    System system_;
};

TEST_F(TraceCoreTest, ComputeBoundRunsNearPeakIpc)
{
    CoreConfig cfg;
    cfg.inst_budget = 100'000;
    // Very sparse memory accesses: IPC should approach the 4-wide peak.
    TraceCore core(system_, cfg, computeTrace(10'000, 64), 0);
    core.start();
    system_.run(2 * leaky::sim::kMs);
    ASSERT_TRUE(core.budgetDone());
    EXPECT_GT(core.measuredIpc(), 3.0);
    EXPECT_LE(core.measuredIpc(), 4.1);
}

TEST_F(TraceCoreTest, MemoryBoundIpcIsMuchLower)
{
    CoreConfig cfg;
    cfg.inst_budget = 20'000;
    cfg.mshrs = 1; // Fully serialised misses.
    TraceCore core(system_, cfg, computeTrace(2, 4096), 0);
    core.start();
    system_.run(20 * leaky::sim::kMs);
    ASSERT_TRUE(core.budgetDone());
    EXPECT_LT(core.measuredIpc(), 0.3);
}

TEST_F(TraceCoreTest, MoreMlpImprovesMemoryBoundIpc)
{
    const auto run_with_mshrs = [this](std::uint32_t mshrs) {
        System system(SystemConfig::paper(DefenseKind::kNone));
        CoreConfig cfg;
        cfg.inst_budget = 20'000;
        cfg.mshrs = mshrs;
        TraceCore core(system, cfg, computeTrace(2, 4096), 0);
        core.start();
        system.run(20 * leaky::sim::kMs);
        EXPECT_TRUE(core.budgetDone());
        return core.measuredIpc();
    };
    const double ipc1 = run_with_mshrs(1);
    const double ipc8 = run_with_mshrs(8);
    EXPECT_GT(ipc8, ipc1 * 2.0);
}

TEST_F(TraceCoreTest, CacheHitsAvoidMemory)
{
    CoreConfig cfg;
    cfg.inst_budget = 50'000;
    // Tiny working set: one line accessed repeatedly.
    std::vector<TraceEntry> trace(16);
    for (auto &e : trace) {
        e.non_mem_insts = 50;
        e.addr = 0x4000;
    }
    TraceCore core(system_, cfg, trace, 0);
    core.start();
    system_.run(2 * leaky::sim::kMs);
    ASSERT_TRUE(core.budgetDone());
    EXPECT_LE(core.memReads(), 2u); // Only the initial fill.
    EXPECT_GT(core.measuredIpc(), 2.0);
}

TEST_F(TraceCoreTest, TraceLoopsForever)
{
    CoreConfig cfg;
    cfg.inst_budget = 1'000'000; // Much larger than one trace pass.
    TraceCore core(system_, cfg, computeTrace(100, 32), 0);
    core.start();
    system_.run(leaky::sim::kMs);
    EXPECT_GT(core.instsRetired(), 32u * 101);
}

TEST_F(TraceCoreTest, IpcAtTracksPartialProgress)
{
    CoreConfig cfg;
    cfg.inst_budget = ~std::uint64_t{0} >> 1;
    TraceCore core(system_, cfg, computeTrace(100, 256), 0);
    core.start();
    system_.run(200 * leaky::sim::kUs);
    EXPECT_FALSE(core.budgetDone());
    EXPECT_GT(core.ipcAt(system_.now()), 0.0);
}

TEST_F(TraceCoreTest, WritesArePosted)
{
    CoreConfig cfg;
    cfg.inst_budget = 10'000;
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 128; ++i) {
        TraceEntry e;
        e.non_mem_insts = 75;
        e.addr = static_cast<std::uint64_t>(i) * 8192;
        e.is_write = true;
        trace.push_back(e);
    }
    TraceCore core(system_, cfg, trace, 0);
    core.start();
    system_.run(2 * leaky::sim::kMs);
    ASSERT_TRUE(core.budgetDone());
    // Stores never block: near-peak IPC despite missing every access.
    EXPECT_GT(core.measuredIpc(), 3.0);
}

} // namespace
