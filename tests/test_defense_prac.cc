/** @file PRAC / PRAC-RIAC / Bank-Level PRAC defense unit tests. */

#include <gtest/gtest.h>

#include "defense/prac.hh"

namespace {

using leaky::defense::PracConfig;
using leaky::defense::PracDefense;
using leaky::dram::AlertInfo;
using leaky::dram::AlertSink;
using leaky::dram::Address;
using leaky::dram::Command;
using leaky::dram::DramConfig;
using leaky::sim::Tick;

class RecordingSink final : public AlertSink
{
  public:
    void raiseAlert(const AlertInfo &info) override
    {
        alerts.push_back(info);
    }
    std::vector<AlertInfo> alerts;
};

Address
addr(std::uint32_t bg, std::uint32_t bank, std::uint32_t row,
     std::uint32_t rank = 0)
{
    Address a;
    a.rank = rank;
    a.bankgroup = bg;
    a.bank = bank;
    a.row = row;
    return a;
}

class PracTest : public ::testing::Test
{
  protected:
    PracTest() : dram_cfg_(DramConfig::ddr5Paper()) {}

    std::unique_ptr<PracDefense>
    make(PracConfig cfg)
    {
        return std::make_unique<PracDefense>(dram_cfg_, cfg, &sink_);
    }

    /** Close @p row in its bank @p times (each close increments). */
    static void
    close(PracDefense &prac, const Address &a, std::uint32_t times,
          Tick start = 0)
    {
        for (std::uint32_t i = 0; i < times; ++i)
            prac.onPrecharge(a, start + i * 100'000);
    }

    DramConfig dram_cfg_;
    RecordingSink sink_;
};

TEST_F(PracTest, CountsIncrementOnPrechargeNotActivate)
{
    PracConfig cfg;
    cfg.nbo = 100;
    auto prac = make(cfg);
    const auto a = addr(0, 0, 7);
    prac->onActivate(a, 0);
    EXPECT_EQ(prac->counterValue(a), 0u);
    prac->onPrecharge(a, 10);
    EXPECT_EQ(prac->counterValue(a), 1u);
}

TEST_F(PracTest, AlertAtNbo)
{
    PracConfig cfg;
    cfg.nbo = 5;
    auto prac = make(cfg);
    close(*prac, addr(0, 0, 7), 4);
    EXPECT_TRUE(sink_.alerts.empty());
    close(*prac, addr(0, 0, 7), 1, 1'000'000);
    ASSERT_EQ(sink_.alerts.size(), 1u);
    EXPECT_FALSE(sink_.alerts[0].bank_scoped);
}

TEST_F(PracTest, NoReAlertWhileRecoveryOutstanding)
{
    PracConfig cfg;
    cfg.nbo = 5;
    auto prac = make(cfg);
    close(*prac, addr(0, 0, 7), 10);
    EXPECT_EQ(sink_.alerts.size(), 1u); // Suppressed until recovery.
}

TEST_F(PracTest, RecoveryRfmResetsTopCounterAndArmsCooldown)
{
    PracConfig cfg;
    cfg.nbo = 5;
    cfg.rfms_per_backoff = 4;
    cfg.cooldown = 1'000'000;
    auto prac = make(cfg);
    const auto hot = addr(0, 0, 7);
    const auto warm = addr(0, 0, 9);
    close(*prac, hot, 5);
    close(*prac, warm, 3);
    ASSERT_EQ(sink_.alerts.size(), 1u);

    // Full recovery: rfms_per_backoff x ranks RFMab windows.
    Address rank0 = addr(0, 0, 0);
    Address rank1 = addr(0, 0, 0, 1);
    const Tick t0 = 2'000'000;
    for (std::uint32_t i = 0; i < cfg.rfms_per_backoff; ++i) {
        prac->onRfm(Command::kRfmAll, rank0, true,
                    t0 + i * 305'000);
        prac->onRfm(Command::kRfmAll, rank1, true,
                    t0 + i * 305'000);
    }
    // The hottest row was serviced (reset), the warm one next, etc.
    EXPECT_EQ(prac->counterValue(hot), 0u);
    EXPECT_EQ(prac->counterValue(warm), 0u);

    // Immediately after recovery the cooldown suppresses alerts...
    close(*prac, hot, 5, t0 + 4 * 305'000 + 1);
    EXPECT_EQ(sink_.alerts.size(), 1u);
    // ...but after the cooldown a new alert fires.
    close(*prac, hot, 1, t0 + 4 * 305'000 + cfg.cooldown + 400'000);
    EXPECT_EQ(sink_.alerts.size(), 2u);
}

TEST_F(PracTest, EachRfmServicesOneAggressor)
{
    PracConfig cfg;
    cfg.nbo = 100;
    auto prac = make(cfg);
    close(*prac, addr(0, 0, 1), 30);
    close(*prac, addr(1, 2, 2), 20);
    close(*prac, addr(2, 3, 3), 10);

    Address rank0 = addr(0, 0, 0);
    prac->onRfm(Command::kRfmAll, rank0, false, 0);
    // Only the hottest row across the rank is reset.
    EXPECT_EQ(prac->counterValue(addr(0, 0, 1)), 0u);
    EXPECT_EQ(prac->counterValue(addr(1, 2, 2)), 20u);
    EXPECT_EQ(prac->counterValue(addr(2, 3, 3)), 10u);
}

TEST_F(PracTest, RfmSameBankScopesToBankIndex)
{
    PracConfig cfg;
    cfg.nbo = 100;
    auto prac = make(cfg);
    close(*prac, addr(0, 1, 5), 40); // Bank index 1.
    close(*prac, addr(0, 2, 6), 50); // Bank index 2 (hotter).

    Address target = addr(0, 1, 0);
    prac->onRfm(Command::kRfmSameBank, target, false, 0);
    // Only bank index 1 is in scope, so its row resets even though a
    // hotter row exists in bank 2.
    EXPECT_EQ(prac->counterValue(addr(0, 1, 5)), 0u);
    EXPECT_EQ(prac->counterValue(addr(0, 2, 6)), 50u);
}

TEST_F(PracTest, BankLevelAlertsCarryBankCoordinates)
{
    PracConfig cfg;
    cfg.nbo = 5;
    cfg.bank_level = true;
    auto prac = make(cfg);
    close(*prac, addr(3, 1, 7), 5);
    ASSERT_EQ(sink_.alerts.size(), 1u);
    EXPECT_TRUE(sink_.alerts[0].bank_scoped);
    EXPECT_EQ(sink_.alerts[0].bank.bankgroup, 3u);
    EXPECT_EQ(sink_.alerts[0].bank.bank, 1u);

    // Another bank can alert independently while the first recovers.
    close(*prac, addr(5, 2, 9), 5, 1'000'000);
    EXPECT_EQ(sink_.alerts.size(), 2u);
}

TEST_F(PracTest, RiacInitialisesCountersRandomly)
{
    PracConfig cfg;
    cfg.nbo = 128;
    cfg.riac = true;
    cfg.seed = 99;
    auto prac = make(cfg);

    // First close materialises a random initial value; across many rows
    // the values should span [0, nbo) rather than all being zero.
    std::uint32_t max_seen = 0;
    std::uint32_t min_seen = ~0u;
    for (std::uint32_t row = 0; row < 200; ++row) {
        const auto a = addr(0, 0, row);
        prac->onPrecharge(a, row * 1000);
        const auto v = prac->counterValue(a);
        max_seen = std::max(max_seen, v);
        min_seen = std::min(min_seen, v);
    }
    EXPECT_GT(max_seen, 64u);
    EXPECT_LT(min_seen, 32u);
}

TEST_F(PracTest, RiacCanAlertEarly)
{
    PracConfig cfg;
    cfg.nbo = 128;
    cfg.riac = true;
    cfg.seed = 7;
    auto prac = make(cfg);
    // Closing 200 distinct rows once each: with random init in
    // [0, 128), some row starts at 127 and alerts on its first close.
    for (std::uint32_t row = 0; row < 200 && sink_.alerts.empty(); ++row)
        prac->onPrecharge(addr(0, 0, row), row * 1000);
    EXPECT_FALSE(sink_.alerts.empty());
}

TEST_F(PracTest, RiacIsSeedDeterministic)
{
    PracConfig cfg;
    cfg.nbo = 128;
    cfg.riac = true;
    cfg.seed = 1234;
    auto a = make(cfg);
    auto b = make(cfg);
    for (std::uint32_t row = 0; row < 50; ++row) {
        a->onPrecharge(addr(0, 0, row), row);
        b->onPrecharge(addr(0, 0, row), row);
        EXPECT_EQ(a->counterValue(addr(0, 0, row)),
                  b->counterValue(addr(0, 0, row)));
    }
}

} // namespace
