/** @file FR-FCFS scheduler tests: hit priority, FCFS, column cap. */

#include <gtest/gtest.h>

#include "ctrl/scheduler.hh"

namespace {

using leaky::ctrl::BankFilter;
using leaky::ctrl::FrFcfsScheduler;
using leaky::ctrl::QueueEntry;
using leaky::ctrl::Request;
using leaky::ctrl::RequestQueue;
using leaky::dram::Address;
using leaky::dram::Command;
using leaky::dram::DramChannel;
using leaky::dram::DramConfig;

class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest()
        : cfg_(DramConfig::ddr5Paper()), chan_(cfg_),
          sched_(cfg_.org, 16)
    {
    }

    QueueEntry
    entry(std::uint32_t bg, std::uint32_t bank, std::uint32_t row,
          std::uint64_t order)
    {
        QueueEntry e;
        e.req.type = Request::Type::kRead;
        e.req.addr.bankgroup = bg;
        e.req.addr.bank = bank;
        e.req.addr.row = row;
        e.order = order;
        return e;
    }

    /** Build a RequestQueue from entries (push annotates addresses). */
    template <typename... Es>
    RequestQueue
    queue(Es... es)
    {
        RequestQueue q(cfg_.org);
        (q.push(std::move(es)), ...);
        return q;
    }

    /** BankFilter that blocks nothing. */
    static constexpr BankFilter noneBlocked{};

    DramConfig cfg_;
    DramChannel chan_;
    FrFcfsScheduler sched_;
};

TEST_F(SchedulerTest, EmptyQueueYieldsNothing)
{
    RequestQueue q(cfg_.org);
    EXPECT_FALSE(sched_.pick(q, chan_, noneBlocked, 0).has_value());
}

TEST_F(SchedulerTest, ClosedBankGetsActivate)
{
    auto q = queue(entry(0, 0, 5, 0));
    const auto d = sched_.pick(q, chan_, noneBlocked, 0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->cmd, Command::kAct);
    EXPECT_EQ(d->index, 0u);
}

TEST_F(SchedulerTest, RowHitBeatsOlderConflict)
{
    chan_.issue(Command::kAct, entry(0, 0, 5, 0).req.addr, 0);
    // Older request conflicts (row 9), newer request hits (row 5).
    auto q = queue(entry(0, 0, 9, 0), entry(0, 0, 5, 1));
    const auto d = sched_.pick(q, chan_, noneBlocked,
                               cfg_.timing.tRCD);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->index, 1u);
    EXPECT_EQ(d->cmd, Command::kRd);
}

TEST_F(SchedulerTest, ConflictGetsPrecharge)
{
    chan_.issue(Command::kAct, entry(0, 0, 5, 0).req.addr, 0);
    auto q = queue(entry(0, 0, 9, 0));
    const auto d = sched_.pick(q, chan_, noneBlocked, 0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->cmd, Command::kPre);
}

TEST_F(SchedulerTest, FcfsAmongEqualCandidates)
{
    auto q = queue(entry(0, 0, 5, 3), entry(1, 0, 6, 1),
                             entry(2, 0, 7, 2));
    const auto d = sched_.pick(q, chan_, noneBlocked, 0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->index, 1u); // order 1 is oldest.
}

TEST_F(SchedulerTest, ColumnCapYieldsToOlderConflict)
{
    const auto hit_addr = entry(0, 0, 5, 0).req.addr;
    chan_.issue(Command::kAct, hit_addr, 0);
    // Saturate the hit streak for that bank.
    for (int i = 0; i < 16; ++i)
        sched_.onIssue(hit_addr, Command::kRd, true);

    // Older conflict (order 0) + newer hit (order 1): the cap forces
    // the conflict now.
    auto q = queue(entry(0, 0, 9, 0), entry(0, 0, 5, 1));
    const auto d = sched_.pick(q, chan_, noneBlocked, cfg_.timing.tRCD);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->index, 0u);
    EXPECT_EQ(d->cmd, Command::kPre);
}

TEST_F(SchedulerTest, CapIgnoredWithoutOlderConflict)
{
    const auto hit_addr = entry(0, 0, 5, 0).req.addr;
    chan_.issue(Command::kAct, hit_addr, 0);
    for (int i = 0; i < 20; ++i)
        sched_.onIssue(hit_addr, Command::kRd, true);
    // Only hits (no older non-hit): keep streaming.
    auto q = queue(entry(0, 0, 5, 0));
    const auto d = sched_.pick(q, chan_, noneBlocked, cfg_.timing.tRCD);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->cmd, Command::kRd);
}

TEST_F(SchedulerTest, ActivateResetsStreak)
{
    const auto hit_addr = entry(0, 0, 5, 0).req.addr;
    chan_.issue(Command::kAct, hit_addr, 0);
    for (int i = 0; i < 16; ++i)
        sched_.onIssue(hit_addr, Command::kRd, true);
    sched_.onIssue(hit_addr, Command::kAct, false);

    auto q = queue(entry(0, 0, 9, 0), entry(0, 0, 5, 1));
    const auto d = sched_.pick(q, chan_, noneBlocked, cfg_.timing.tRCD);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->index, 1u); // Hit priority restored.
}

TEST_F(SchedulerTest, BlockedBanksAreSkipped)
{
    auto q = queue(entry(0, 0, 5, 0), entry(1, 1, 6, 1));
    const BankFilter blocked{[](const void *, const Address &a) {
        return a.bankgroup == 0 && a.bank == 0;
    }, nullptr};
    const auto d = sched_.pick(q, chan_, blocked, 0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->index, 1u);
}

TEST_F(SchedulerTest, AllBlockedYieldsNothing)
{
    auto q = queue(entry(0, 0, 5, 0));
    const BankFilter blocked{
        [](const void *, const Address &) { return true; }, nullptr};
    EXPECT_FALSE(sched_.pick(q, chan_, blocked, 0).has_value());
}

TEST_F(SchedulerTest, WriteHitPicksWriteCommand)
{
    const auto a = entry(0, 0, 5, 0).req.addr;
    chan_.issue(Command::kAct, a, 0);
    QueueEntry e = entry(0, 0, 5, 0);
    e.req.type = Request::Type::kWrite;
    auto q = queue(e);
    const auto d = sched_.pick(q, chan_, noneBlocked, cfg_.timing.tRCD);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->cmd, Command::kWr);
}

} // namespace
