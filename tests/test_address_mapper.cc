/** @file AddressMapper tests: decode/compose round trips, field order. */

#include <gtest/gtest.h>

#include "dram/address_mapper.hh"
#include "sim/rng.hh"

namespace {

using leaky::dram::Address;
using leaky::dram::AddressMapper;
using leaky::dram::Field;
using leaky::dram::Organization;

TEST(AddressMapper, CapacityMatchesGeometry)
{
    Organization org;
    AddressMapper mapper(org, 1);
    const std::uint64_t expected = 64ull * org.columns * org.bankgroups *
                                   org.banks_per_group * org.ranks *
                                   org.rows;
    EXPECT_EQ(mapper.capacityBytes(), expected);
}

TEST(AddressMapper, ConsecutiveLinesWalkColumnsFirst)
{
    Organization org;
    AddressMapper mapper(org, 1);
    const auto a0 = mapper.decode(0);
    const auto a1 = mapper.decode(64);
    EXPECT_EQ(a0.column + 1, a1.column);
    EXPECT_TRUE(a0.sameBank(a1));
    EXPECT_EQ(a0.row, a1.row);
}

TEST(AddressMapper, OffsetWithinLineIgnored)
{
    Organization org;
    AddressMapper mapper(org, 1);
    const auto a = mapper.decode(4096);
    const auto b = mapper.decode(4096 + 63);
    EXPECT_TRUE(a.sameRow(b));
    EXPECT_EQ(a.column, b.column);
}

TEST(AddressMapper, ComposeDecodesBack)
{
    Organization org;
    AddressMapper mapper(org, 2);
    Address addr;
    addr.channel = 1;
    addr.rank = 1;
    addr.bankgroup = 5;
    addr.bank = 2;
    addr.row = 70'000;
    addr.column = 99;
    const auto phys = mapper.compose(addr);
    const auto back = mapper.decode(phys);
    EXPECT_EQ(back.channel, addr.channel);
    EXPECT_EQ(back.rank, addr.rank);
    EXPECT_EQ(back.bankgroup, addr.bankgroup);
    EXPECT_EQ(back.bank, addr.bank);
    EXPECT_EQ(back.row, addr.row);
    EXPECT_EQ(back.column, addr.column);
}

TEST(AddressMapperDeath, ComposeRejectsOutOfRangeFields)
{
    Organization org;
    AddressMapper mapper(org, 1);
    Address addr;
    addr.bankgroup = org.bankgroups; // One past the end.
    EXPECT_DEATH(mapper.compose(addr), "out of range");
}

TEST(AddressMapperDeath, RejectsNonPermutationOrders)
{
    Organization org;
    // kRow duplicated, kColumn missing: before validation this built a
    // mapper whose decode/compose round trips silently corrupted.
    EXPECT_DEATH(AddressMapper(org, 1,
                               leaky::dram::MappingSpec::fieldOrder(
                                   {Field::kRow, Field::kBankGroup,
                                    Field::kBank, Field::kRank,
                                    Field::kRow, Field::kChannel})),
                 "permutation");
}

TEST(AddressMapper, PresetOrdersArePermutations)
{
    Organization org;
    for (auto preset : leaky::dram::kAllMappingPresets) {
        // Construction validates the order; capacity is preset-
        // independent (a permutation never changes the field product).
        AddressMapper mapper(org, 4, preset);
        AddressMapper reference(org, 4);
        EXPECT_EQ(mapper.capacityBytes(), reference.capacityBytes())
            << leaky::dram::presetName(preset);
    }
}

TEST(AddressMapper, PresetNamesAreStable)
{
    using leaky::dram::MappingPreset;
    using leaky::dram::presetName;
    EXPECT_STREQ(presetName(MappingPreset::kRowInterleaved),
                 "row-interleaved");
    EXPECT_STREQ(presetName(MappingPreset::kBankFirst), "bank-first");
    EXPECT_STREQ(presetName(MappingPreset::kChannelLast),
                 "channel-last");
}

TEST(AddressMapper, BankFirstStripesConsecutiveLinesAcrossBanks)
{
    Organization org;
    AddressMapper mapper(org, 1,
                         leaky::dram::MappingPreset::kBankFirst);
    const auto a0 = mapper.decode(0);
    const auto a1 = mapper.decode(64);
    EXPECT_FALSE(a0.sameBank(a1)); // Bank fields at the LSB end.
    EXPECT_EQ(a0.column, a1.column);
}

/** Property: every preset round-trips random coordinates at any
 *  channel count. */
TEST(AddressMapper, PresetsRoundTripRandomCoordinates)
{
    Organization org;
    for (auto preset : leaky::dram::kAllMappingPresets) {
        for (std::uint32_t channels : {1u, 2u, 4u}) {
            AddressMapper mapper(org, channels, preset);
            leaky::sim::Rng rng(channels * 7 +
                                static_cast<std::uint32_t>(preset));
            for (int i = 0; i < 200; ++i) {
                Address addr;
                addr.channel =
                    static_cast<std::uint32_t>(rng.below(channels));
                addr.rank =
                    static_cast<std::uint32_t>(rng.below(org.ranks));
                addr.bankgroup = static_cast<std::uint32_t>(
                    rng.below(org.bankgroups));
                addr.bank = static_cast<std::uint32_t>(
                    rng.below(org.banks_per_group));
                addr.row =
                    static_cast<std::uint32_t>(rng.below(org.rows));
                addr.column =
                    static_cast<std::uint32_t>(rng.below(org.columns));
                const auto back = mapper.decode(mapper.compose(addr));
                EXPECT_TRUE(back.sameRow(addr));
                EXPECT_EQ(back.column, addr.column);
                EXPECT_EQ(back.channel, addr.channel);
            }
        }
    }
}

/** Property: decode(compose(x)) == x for random x under any channel
 *  count. */
class MapperRoundTrip : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MapperRoundTrip, RandomRoundTrips)
{
    Organization org;
    const auto channels = GetParam();
    AddressMapper mapper(org, channels);
    leaky::sim::Rng rng(channels);
    for (int i = 0; i < 500; ++i) {
        Address addr;
        addr.channel = static_cast<std::uint32_t>(rng.below(channels));
        addr.rank = static_cast<std::uint32_t>(rng.below(org.ranks));
        addr.bankgroup =
            static_cast<std::uint32_t>(rng.below(org.bankgroups));
        addr.bank =
            static_cast<std::uint32_t>(rng.below(org.banks_per_group));
        addr.row = static_cast<std::uint32_t>(rng.below(org.rows));
        addr.column = static_cast<std::uint32_t>(rng.below(org.columns));
        const auto back = mapper.decode(mapper.compose(addr));
        EXPECT_TRUE(back.sameRow(addr));
        EXPECT_EQ(back.column, addr.column);
        EXPECT_EQ(back.channel, addr.channel);
    }
}

INSTANTIATE_TEST_SUITE_P(Channels, MapperRoundTrip,
                         ::testing::Values(1, 2, 4));

TEST(AddressMapper, AlternativeFieldOrderStillRoundTrips)
{
    Organization org;
    AddressMapper mapper(org, 1,
                         leaky::dram::MappingSpec::fieldOrder(
                             {Field::kBank, Field::kColumn, Field::kRank,
                              Field::kBankGroup, Field::kRow,
                              Field::kChannel}));
    Address addr;
    addr.rank = 1;
    addr.bankgroup = 3;
    addr.bank = 1;
    addr.row = 1234;
    addr.column = 17;
    const auto back = mapper.decode(mapper.compose(addr));
    EXPECT_TRUE(back.sameRow(addr));
    EXPECT_EQ(back.column, addr.column);
}

/** The pre-MappingSpec raw-order constructor survives one release as
 *  a deprecated adapter; it must keep behaving exactly like the
 *  MappingSpec::fieldOrder spelling until it is removed. */
TEST(AddressMapper, DeprecatedRawOrderCtorMatchesFieldOrderSpec)
{
    Organization org;
    const std::array<Field, leaky::dram::kNumFields> order = {
        Field::kBankGroup, Field::kBank, Field::kRank,
        Field::kColumn,    Field::kRow,  Field::kChannel};
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    AddressMapper legacy(org, 2, order);
#pragma GCC diagnostic pop
    AddressMapper modern(org, 2,
                         leaky::dram::MappingSpec::fieldOrder(order));
    // fieldOrder canonicalizes preset-equal orders onto the preset.
    EXPECT_EQ(legacy.spec(), modern.spec());
    EXPECT_EQ(legacy.spec().str(), "bank-first");
    for (std::uint64_t phys : {0ull, 64ull, 4096ull, 987654321ull}) {
        EXPECT_EQ(legacy.compose(legacy.decode(phys)),
                  modern.compose(modern.decode(phys)));
    }
}

} // namespace
