/** @file Channel metrics (Eq. 1/2) and sim statistics tests. */

#include <gtest/gtest.h>

#include "sim/stats.hh"
#include "stats/channel_metrics.hh"

namespace {

namespace st = leaky::stats;

TEST(ChannelMetrics, BinaryEntropyEndpoints)
{
    EXPECT_DOUBLE_EQ(st::binaryEntropy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(st::binaryEntropy(1.0), 0.0);
    EXPECT_DOUBLE_EQ(st::binaryEntropy(0.5), 1.0);
    EXPECT_NEAR(st::binaryEntropy(0.11), 0.4999, 0.01);
}

TEST(ChannelMetrics, CapacityMatchesPaperExamples)
{
    // Paper §6.3: 40 Kbps raw at e=0.05 -> 28.8 Kbps capacity.
    EXPECT_NEAR(st::channelCapacity(40'000.0, 0.05) / 1000.0, 28.5,
                0.5);
    // Error 0.5 carries nothing.
    EXPECT_NEAR(st::channelCapacity(40'000.0, 0.5), 0.0, 1e-9);
    // Perfect channel: full rate.
    EXPECT_DOUBLE_EQ(st::channelCapacity(48'700.0, 0.0), 48'700.0);
}

TEST(ChannelMetrics, ErrorProbabilityCountsMismatches)
{
    const std::vector<bool> sent = {0, 1, 0, 1, 1, 0, 0, 1};
    const std::vector<bool> recv = {0, 1, 1, 1, 1, 0, 1, 1};
    EXPECT_DOUBLE_EQ(st::errorProbability(sent, recv), 0.25);
}

TEST(ChannelMetrics, RawBitRateFromWindow)
{
    // 25 us windows -> 40 Kbps; 20 us -> 50 Kbps.
    EXPECT_NEAR(st::rawBitRate(25'000'000), 40'000.0, 1.0);
    EXPECT_NEAR(st::rawBitRate(20'000'000), 50'000.0, 1.0);
    // Quaternary doubles the rate.
    EXPECT_NEAR(st::rawBitRate(25'000'000, 2.0), 80'000.0, 1.0);
}

TEST(ChannelMetrics, NoiseIntensityMatchesEquation2)
{
    const leaky::sim::Tick min_sleep = 200'000;
    const leaky::sim::Tick max_sleep = 2'000'000;
    EXPECT_NEAR(st::noiseIntensity(max_sleep, min_sleep, max_sleep),
                1.0, 1e-9);
    EXPECT_NEAR(st::noiseIntensity(min_sleep, min_sleep, max_sleep),
                100.0, 1e-9);
    // Round trip through the inverse.
    for (double intensity : {1.0, 10.0, 50.0, 88.0, 100.0}) {
        const auto sleep =
            st::sleepForIntensity(intensity, min_sleep, max_sleep);
        EXPECT_NEAR(st::noiseIntensity(sleep, min_sleep, max_sleep),
                    intensity, 0.1);
    }
}

TEST(ChannelMetrics, WeightedSpeedup)
{
    EXPECT_DOUBLE_EQ(
        st::weightedSpeedup({1.0, 2.0}, {1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(
        st::weightedSpeedup({0.5, 1.0}, {1.0, 2.0}), 1.0);
}

TEST(SimStats, AccumulatorMoments)
{
    leaky::sim::Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.sample(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.stddev(), 2.0, 1e-9);
}

TEST(SimStats, HistogramBucketsAndOverflow)
{
    leaky::sim::Histogram h(0.0, 100.0, 10);
    h.sample(-1.0);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.5);
    h.sample(99.9);
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_FALSE(h.render().empty());
}

} // namespace
