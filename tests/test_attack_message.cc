/** @file Message encoding tests: strings, patterns, symbol packing. */

#include <gtest/gtest.h>

#include "attack/message.hh"

namespace {

using namespace leaky::attack;

TEST(Message, MicroIs40Bits)
{
    const auto bits = bitsFromString("MICRO");
    EXPECT_EQ(bits.size(), 40u);
    EXPECT_EQ(stringFromBits(bits), "MICRO");
}

TEST(Message, StringRoundTripArbitraryBytes)
{
    const std::string text = "LeakyHammer \x01\x7f test";
    EXPECT_EQ(stringFromBits(bitsFromString(text)), text);
}

TEST(Message, PatternsMatchPaperDefinitions)
{
    const auto ones = patternBits(MessagePattern::kAllOnes, 6);
    const auto zeros = patternBits(MessagePattern::kAllZeros, 6);
    const auto c0 = patternBits(MessagePattern::kCheckered0, 6);
    const auto c1 = patternBits(MessagePattern::kCheckered1, 6);
    for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(ones[static_cast<std::size_t>(i)]);
        EXPECT_FALSE(zeros[static_cast<std::size_t>(i)]);
        EXPECT_EQ(c0[static_cast<std::size_t>(i)], i % 2 == 1);
        EXPECT_EQ(c1[static_cast<std::size_t>(i)], i % 2 == 0);
    }
}

TEST(Message, RandomPatternIsDeterministicAndMixed)
{
    const auto a = patternBits(MessagePattern::kRandom, 256);
    const auto b = patternBits(MessagePattern::kRandom, 256);
    EXPECT_EQ(a, b);
    int ones = 0;
    for (bool bit : a)
        ones += bit ? 1 : 0;
    EXPECT_GT(ones, 96);
    EXPECT_LT(ones, 160);
}

TEST(Message, BitsPerSymbolValues)
{
    EXPECT_DOUBLE_EQ(bitsPerSymbol(2), 1.0);
    EXPECT_NEAR(bitsPerSymbol(3), 1.58, 0.01);
    EXPECT_DOUBLE_EQ(bitsPerSymbol(4), 2.0);
}

/** Property: symbol packing round-trips for every level count. */
class SymbolRoundTrip : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SymbolRoundTrip, PackUnpackIdentity)
{
    const auto levels = GetParam();
    for (auto pattern :
         {MessagePattern::kRandom, MessagePattern::kCheckered0,
          MessagePattern::kAllOnes}) {
        const auto bits = patternBits(pattern, 152); // 19-bit multiple.
        const auto symbols = symbolsFromBits(bits, levels);
        for (auto s : symbols)
            EXPECT_LT(s, levels);
        const auto back = bitsFromSymbols(symbols, levels, bits.size());
        EXPECT_EQ(back, bits) << "levels=" << levels;
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, SymbolRoundTrip,
                         ::testing::Values(2, 3, 4));

TEST(Message, QuaternaryPacksTwoBits)
{
    const std::vector<bool> bits = {1, 0, 0, 1, 1, 1};
    const auto symbols = symbolsFromBits(bits, 4);
    ASSERT_EQ(symbols.size(), 3u);
    EXPECT_EQ(symbols[0], 2); // 10
    EXPECT_EQ(symbols[1], 1); // 01
    EXPECT_EQ(symbols[2], 3); // 11
}

TEST(Message, TernaryUsesMoreSymbolsThanQuaternary)
{
    const auto bits = patternBits(MessagePattern::kRandom, 152);
    EXPECT_GT(symbolsFromBits(bits, 3).size(),
              symbolsFromBits(bits, 4).size());
}

} // namespace
