/** @file Covert-channel integration tests (PRAC and RFM channels). */

#include <gtest/gtest.h>

#include "attack/covert.hh"
#include "attack/dram_addr.hh"
#include "attack/message.hh"
#include "attack/noise.hh"
#include "core/experiments.hh"

namespace {

using namespace leaky;
using attack::ChannelKind;

std::vector<std::uint8_t>
binarySymbols(const std::vector<bool> &bits)
{
    std::vector<std::uint8_t> symbols;
    for (bool b : bits)
        symbols.push_back(b ? 1 : 0);
    return symbols;
}

TEST(CovertChannel, PracTransmitsMicroErrorFree)
{
    const auto demo = core::runMessageDemo(ChannelKind::kPrac, "MICRO");
    EXPECT_EQ(demo.decoded_text, "MICRO");
    EXPECT_EQ(demo.sent_bits, demo.received_bits);
    // Each logic-1 window saw exactly one back-off (paper Fig. 3).
    for (std::size_t i = 0; i < demo.sent_bits.size(); ++i) {
        if (demo.sent_bits[i])
            EXPECT_EQ(demo.detections[i], 1u) << "window " << i;
        else
            EXPECT_EQ(demo.detections[i], 0u) << "window " << i;
    }
}

TEST(CovertChannel, RfmTransmitsMicroErrorFree)
{
    const auto demo = core::runMessageDemo(ChannelKind::kRfm, "MICRO");
    EXPECT_EQ(demo.decoded_text, "MICRO");
    // Logic-1 windows see multiple RFMs, logic-0 windows fewer than
    // Trecv (paper Fig. 6).
    for (std::size_t i = 0; i < demo.sent_bits.size(); ++i) {
        if (demo.sent_bits[i])
            EXPECT_GE(demo.detections[i], 3u) << "window " << i;
        else
            EXPECT_LT(demo.detections[i], 3u) << "window " << i;
    }
}

TEST(CovertChannel, RawBitRatesMatchWindowSizes)
{
    sys::System prac_sys(core::pracAttackSystem());
    const auto prac_cfg =
        attack::makeChannelConfig(prac_sys, ChannelKind::kPrac);
    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, 16);
    const auto result = attack::runCovertChannel(
        prac_sys, prac_cfg, binarySymbols(bits));
    EXPECT_NEAR(result.raw_bit_rate, 40'000.0, 100.0); // 25 us windows.
}

TEST(CovertChannel, SenderIdleMeansNoBackoffs)
{
    sys::System system(core::pracAttackSystem());
    const auto cfg =
        attack::makeChannelConfig(system, ChannelKind::kPrac);
    const auto result = attack::runCovertChannel(
        system, cfg,
        binarySymbols(attack::patternBits(
            attack::MessagePattern::kAllZeros, 24)));
    EXPECT_EQ(result.symbol_error, 0.0);
    EXPECT_EQ(result.backoffs, 0u); // Ground truth: none triggered.
}

TEST(CovertChannel, AllOnesTriggersOneBackoffPerWindow)
{
    sys::System system(core::pracAttackSystem());
    const auto cfg =
        attack::makeChannelConfig(system, ChannelKind::kPrac);
    const auto result = attack::runCovertChannel(
        system, cfg,
        binarySymbols(attack::patternBits(
            attack::MessagePattern::kAllOnes, 24)));
    EXPECT_EQ(result.symbol_error, 0.0);
    EXPECT_NEAR(static_cast<double>(result.backoffs), 24.0, 2.0);
}

TEST(CovertChannel, CrossBankReceiverStillDecodesPrac)
{
    // PRAC back-offs block the whole channel (§5.2): the receiver works
    // from any bank.
    sys::System system(core::pracAttackSystem());
    auto cfg = attack::makeChannelConfig(system, ChannelKind::kPrac);
    // The sender self-conflicts between two rows of its bank; the
    // receiver listens from a different rank/bank-group/bank. With the
    // sender alone driving activations, charging the counters takes
    // ~25 us, so the transmission window doubles.
    cfg.sender_addr2 =
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1064);
    cfg.receiver_addr =
        attack::rowAddress(system.mapper(), 0, 1, 6, 3, 2000);
    cfg.window = 50 * sim::kUs;
    const auto result = attack::runCovertChannel(
        system, cfg,
        binarySymbols(attack::patternBits(
            attack::MessagePattern::kCheckered1, 32)));
    EXPECT_LE(result.symbol_error, 0.1);
}

TEST(CovertChannel, NoiseDegradesButDoesNotKillChannel)
{
    core::ChannelRunSpec clean;
    clean.kind = ChannelKind::kPrac;
    clean.message_bytes = 8;
    clean.pattern = attack::MessagePattern::kCheckered0;
    const auto quiet = core::runChannel(clean);

    core::ChannelRunSpec noisy = clean;
    noisy.noise_sleep = 400'000; // High intensity.
    const auto loud = core::runChannel(noisy);

    EXPECT_LE(quiet.symbol_error, loud.symbol_error + 0.05);
    EXPECT_GT(loud.capacity, 0.0);
}

/** Property sweep: multibit round trips for every level count. */
class MultibitChannel : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MultibitChannel, RandomPayloadMostlyDecodes)
{
    core::ChannelRunSpec spec;
    spec.kind = ChannelKind::kPrac;
    spec.levels = GetParam();
    spec.message_bytes = 8;
    spec.pattern = attack::MessagePattern::kRandom;
    const auto result = core::runChannel(spec);
    // Binary/ternary decode cleanly; quaternary tolerates some symbol
    // confusion (paper: 0.29 error).
    const double budget = GetParam() == 4 ? 0.35 : 0.05;
    EXPECT_LE(result.symbol_error, budget);
}

INSTANTIATE_TEST_SUITE_P(Levels, MultibitChannel,
                         ::testing::Values(2, 3, 4));

TEST(NoiseAgent, GeneratesBankConflicts)
{
    sys::System system(core::pracAttackSystem());
    attack::NoiseConfig cfg;
    cfg.addrs = attack::rowsInBank(system.mapper(), 0, 0, 0, 0, 3000, 4,
                                   128);
    cfg.sleep = 500'000;
    attack::NoiseAgent agent(system, cfg);
    agent.start();
    system.run(100 * sim::kUs);
    // ~100us / (0.5us + overhead) accesses.
    EXPECT_GT(agent.accessCount(), 150u);
    EXPECT_LT(agent.accessCount(), 220u);
    agent.stop();
    const auto before = agent.accessCount();
    system.run(20 * sim::kUs);
    EXPECT_LE(agent.accessCount(), before + 1);
}

} // namespace
