/** @file PRFM defense unit tests: RAA counters and RFM requests. */

#include <gtest/gtest.h>

#include "defense/prfm.hh"

namespace {

using leaky::ctrl::RfmRequest;
using leaky::defense::PrfmConfig;
using leaky::defense::PrfmDefense;
using leaky::dram::Address;
using leaky::dram::Command;
using leaky::dram::DramConfig;

Address
addr(std::uint32_t bg, std::uint32_t bank, std::uint32_t rank = 0)
{
    Address a;
    a.rank = rank;
    a.bankgroup = bg;
    a.bank = bank;
    return a;
}

class PrfmTest : public ::testing::Test
{
  protected:
    PrfmTest() : dram_cfg_(DramConfig::ddr5Paper())
    {
        PrfmConfig cfg;
        cfg.trfm = 4;
        prfm_ = std::make_unique<PrfmDefense>(dram_cfg_, cfg);
    }

    DramConfig dram_cfg_;
    std::unique_ptr<PrfmDefense> prfm_;
};

TEST_F(PrfmTest, NoRfmBelowThreshold)
{
    for (int i = 0; i < 3; ++i)
        prfm_->onActivate(addr(0, 0), i);
    EXPECT_FALSE(prfm_->pendingRfm(100).has_value());
    EXPECT_EQ(prfm_->raaCount(addr(0, 0)), 3u);
}

TEST_F(PrfmTest, RfmRequestedAtThreshold)
{
    for (int i = 0; i < 4; ++i)
        prfm_->onActivate(addr(0, 2), i);
    const auto req = prfm_->pendingRfm(100);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->kind, Command::kRfmSameBank);
    EXPECT_EQ(req->target.bank, 2u);
    EXPECT_FALSE(req->precise);
    // Popped: no duplicate while in flight.
    EXPECT_FALSE(prfm_->pendingRfm(101).has_value());
}

TEST_F(PrfmTest, RfmIssueDecrementsAllGroupsOfBank)
{
    // Charge bank index 1 in two different bank groups.
    for (int i = 0; i < 4; ++i)
        prfm_->onActivate(addr(0, 1), i);
    for (int i = 0; i < 2; ++i)
        prfm_->onActivate(addr(5, 1), i);

    auto req = prfm_->pendingRfm(100);
    ASSERT_TRUE(req.has_value());
    prfm_->onRfmIssued(*req, 100, 200);

    // trfm (4) subtracted, saturating at zero.
    EXPECT_EQ(prfm_->raaCount(addr(0, 1)), 0u);
    EXPECT_EQ(prfm_->raaCount(addr(5, 1)), 0u);
}

TEST_F(PrfmTest, ReArmsAfterIssue)
{
    for (int i = 0; i < 4; ++i)
        prfm_->onActivate(addr(0, 3), i);
    auto req = prfm_->pendingRfm(10);
    ASSERT_TRUE(req.has_value());
    prfm_->onRfmIssued(*req, 10, 20);

    for (int i = 0; i < 4; ++i)
        prfm_->onActivate(addr(0, 3), 100 + i);
    EXPECT_TRUE(prfm_->pendingRfm(200).has_value());
    EXPECT_EQ(prfm_->rfmCount(), 2u);
}

TEST_F(PrfmTest, DistinctBanksQueueDistinctRfms)
{
    for (int i = 0; i < 4; ++i) {
        prfm_->onActivate(addr(0, 0), i);
        prfm_->onActivate(addr(0, 1), i);
    }
    const auto first = prfm_->pendingRfm(50);
    const auto second = prfm_->pendingRfm(51);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(first->target.bank, second->target.bank);
}

TEST_F(PrfmTest, CountersArePerBankGroupPair)
{
    for (int i = 0; i < 3; ++i)
        prfm_->onActivate(addr(2, 0), i);
    EXPECT_EQ(prfm_->raaCount(addr(2, 0)), 3u);
    EXPECT_EQ(prfm_->raaCount(addr(3, 0)), 0u);
    EXPECT_EQ(prfm_->raaCount(addr(2, 1)), 0u);
}

TEST_F(PrfmTest, NoTimerNeeded)
{
    EXPECT_EQ(prfm_->nextEventTick(0), leaky::sim::kTickMax);
}

} // namespace
