/**
 * @file
 * CLI error-path contract: every subcommand exits 2 (usage error) on
 * unknown flags, malformed values, and missing required arguments —
 * never 0, never a crash. Drives runner::cliMain in-process; the happy
 * paths are covered by ci/smoke_figures.sh and the figure tests.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runner/cli.hh"

namespace {

using leaky::runner::cliMain;

int
runCli(std::vector<std::string> args)
{
    args.insert(args.begin(), "leakyhammer");
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (auto &arg : args)
        argv.push_back(arg.data());
    return cliMain(static_cast<int>(argv.size()), argv.data());
}

TEST(CliErrors, NoCommandOrUnknownCommandIsUsageError)
{
    EXPECT_EQ(runCli({}), 2);
    EXPECT_EQ(runCli({"bogus"}), 2);
    EXPECT_EQ(runCli({"--fig"}), 2);
}

TEST(CliErrors, EverySubcommandRejectsUnknownFlags)
{
    for (const char *command :
         {"list", "repro", "campaign", "run", "fuzz", "bench"}) {
        if (std::string(command) == "run") {
            // `run` resolves the demo first; flags parse inside it.
            EXPECT_EQ(runCli({"run", "quickstart", "--nope"}), 2);
            continue;
        }
        EXPECT_EQ(runCli({command, "--nope"}), 2) << command;
        EXPECT_EQ(runCli({command, "--nope=3"}), 2) << command;
    }
}

TEST(CliErrors, MalformedValuesAreUsageErrors)
{
    EXPECT_EQ(runCli({"repro", "--fig", "latency", "--threads", "abc"}),
              2);
    EXPECT_EQ(runCli({"repro", "--fig", "latency", "--seed", "-1"}), 2);
    EXPECT_EQ(runCli({"fuzz", "--seed", "abc"}), 2);
    EXPECT_EQ(runCli({"fuzz", "--threads", "1.5"}), 2);
    EXPECT_EQ(runCli({"bench", "--jobs", "abc"}), 2);
    EXPECT_EQ(runCli({"bench", "--jobs", "0"}), 2);
    EXPECT_EQ(runCli({"campaign", "--shards", "zero"}), 2);
}

TEST(CliErrors, MissingRequiredArgumentsAreUsageErrors)
{
    EXPECT_EQ(runCli({"repro"}), 2);
    EXPECT_EQ(runCli({"repro", "--fig", "no-such-figure"}), 2);
    EXPECT_EQ(runCli({"campaign"}), 2);
    EXPECT_EQ(runCli({"campaign", "--fig", "latency"}), 2);
    EXPECT_EQ(runCli({"campaign", "--fig", "no-such-figure", "--dir",
                      "/tmp/x"}),
              2);
    EXPECT_EQ(runCli({"run"}), 2);
    EXPECT_EQ(runCli({"run", "no-such-demo"}), 2);
    EXPECT_EQ(runCli({"help", "no-such-topic"}), 2);
}

} // namespace
