#!/usr/bin/env bash
# Local mirror of the GitHub Actions CI: configure, build, test, and
# smoke-run the perf harness so benchmark code executes on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Figure-reproduction smoke: run the headline capacity sweep on the
# work-stealing pool, then rerun single-threaded — with fixed seeds the
# two CSV artifacts must be bit-identical.
"$BUILD_DIR/leakyhammer" repro --fig capacity --smoke --threads 4 \
    --out "$BUILD_DIR/repro"
"$BUILD_DIR/leakyhammer" repro --fig capacity --smoke --threads 1 \
    --out "$BUILD_DIR/repro-serial"
cmp "$BUILD_DIR/repro/fig_capacity_vs_noise.csv" \
    "$BUILD_DIR/repro-serial/fig_capacity_vs_noise.csv"
echo "figure CSV bit-identical across thread counts"

# Perf smoke: the numbers are meaningless at this min_time; the point
# is that every benchmark still runs to completion.
if [ -x "$BUILD_DIR/bench/micro_simulator_throughput" ]; then
    (cd "$BUILD_DIR" && ./bench/micro_simulator_throughput \
        --benchmark_min_time=0.01)
else
    echo "google-benchmark not found; kernel bench harness skipped"
fi
