#!/usr/bin/env bash
# Local mirror of the GitHub Actions CI. One invocation runs one build
# variant; the workflow fans the same script out across its matrix, so
# workflow and local runs cannot diverge.
#
#   BUILD_VARIANT=default   -O2 -g, LEAKY_DCHECK on (the dev build)
#   BUILD_VARIANT=asan      ASan + UBSan, checks on, halt on any report
#   BUILD_VARIANT=tsan      ThreadSanitizer over the work-stealing
#                           SweepPool: ctest + the 4-thread figure
#                           smoke, halt on any data-race report
#   BUILD_VARIANT=release   Release -DLEAKY_DCHECKS=OFF + the
#                           bench-regression guard (tools/check_bench.py)
#   BUILD_VARIANT=lint      static passes only, no build: leaky-lint
#                           (tools/lint/leaky_lint.py; exit 2 = lint
#                           violations, 3 = lint tool error) + advisory
#                           clang-tidy over a compile_commands.json
#                           export when clang-tidy is installed
#
# Every compiled variant configures with -DLEAKY_WERROR=ON (warnings
# are errors in CI; the CMake default stays OFF for local dev).
#
# Other knobs: BUILD_DIR, JOBS, EXPECTED_FIGURES (see smoke_figures.sh),
# LEAKY_BENCH_TOLERANCE (see check_bench.py). ccache is picked up
# automatically when installed.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_VARIANT="${BUILD_VARIANT:-default}"
BUILD_DIR="${BUILD_DIR:-build-ci-$BUILD_VARIANT}"
JOBS="${JOBS:-$(nproc)}"

usage() {
    echo "usage: BUILD_VARIANT=<variant> ci/run_ci.sh" >&2
    echo "  default   -O2 -g, LEAKY_DCHECK on (the dev build)" >&2
    echo "  asan      ASan + UBSan, halt on any report" >&2
    echo "  tsan      ThreadSanitizer, halt on any data race" >&2
    echo "  release   Release, checks off, bench-regression guard" >&2
    echo "  lint      leaky-lint + advisory clang-tidy (no build)" >&2
}

# ------------------------------------------------------------- lint
# Static passes only: leaky-lint gates (its exit codes propagate:
# 2 = violations, 3 = tool error), clang-tidy is advisory and runs
# only when installed, over a compile_commands.json export (configure
# only — no compilation needed).
if [ "$BUILD_VARIANT" = lint ]; then
    python3 tools/lint/leaky_lint.py src tests bench
    if command -v clang-tidy > /dev/null; then
        cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
              -DLEAKY_WERROR=ON > /dev/null
        # .clang-tidy sets no WarningsAsErrors: findings print for the
        # reviewer but do not gate (leaky-lint is the gating pass).
        git ls-files 'src/*.cc' | xargs clang-tidy -p "$BUILD_DIR" \
            --quiet || true
        echo "clang-tidy: advisory pass complete"
    else
        echo "clang-tidy not found; advisory tidy pass skipped"
    fi
    echo "lint variant: leaky-lint clean"
    exit 0
fi

CMAKE_ARGS=(-DLEAKY_WERROR=ON)
case "$BUILD_VARIANT" in
  default)
    ;;
  asan)
    CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
        "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=address,undefined")
    ;;
  tsan)
    CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread"
        "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread")
    # No suppressions file: the pool/controller code is expected to be
    # race-free as written. Add per-entry-justified suppressions here
    # only if a third-party library ever reports.
    export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
    ;;
  release)
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Release -DLEAKY_DCHECKS=OFF)
    ;;
  *)
    echo "run_ci.sh: unknown BUILD_VARIANT '$BUILD_VARIANT'" >&2
    usage
    exit 2
    ;;
esac
if command -v ccache > /dev/null; then
    CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# The ${arr[@]+...} guard keeps an empty array safe under `set -u` on
# bash < 4.4 (macOS ships 3.2).
cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build "$BUILD_DIR" -j "$JOBS"
# ctest includes the golden differential suite (GoldenFigures.*) and
# the leaky-lint self-test + repo-clean checks (lint.*), so every
# variant — the asan/tsan builds in particular — replays the figure
# pipeline against tests/golden/ byte for byte.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Figure-registry smoke: every registered figure reproduces at --smoke
# and its CSV is bit-identical on 4 threads vs 1 thread. Under tsan
# this is also the data-race hunt over the work-stealing pool at real
# parallelism.
ci/smoke_figures.sh "$BUILD_DIR/leakyhammer" "$BUILD_DIR/repro"

# Docs gate (default variant only -- the docs don't change per build
# flavour): docs/FIGURES.md must cover exactly the figure registry the
# binary reports, docs/LINTING.md must cover exactly the leaky-lint
# rule set, and every relative markdown link must resolve.
if [ "$BUILD_VARIANT" = default ]; then
    "$BUILD_DIR/leakyhammer" list --names > "$BUILD_DIR/figure_names.txt"
    python3 tools/check_docs.py --names "$BUILD_DIR/figure_names.txt"
fi

# Fuzz smoke (default variant only): `leakyhammer fuzz` at a tiny
# budget, run twice with the same seed — the search CSV and the
# best-pattern serializations must be byte-identical (the fuzzer's
# determinism contract, over and above the figure smoke above).
if [ "$BUILD_VARIANT" = default ]; then
    rm -rf "$BUILD_DIR/fuzz-a" "$BUILD_DIR/fuzz-b"
    "$BUILD_DIR/leakyhammer" fuzz --smoke --seed 7 --threads 4 \
        --out "$BUILD_DIR/fuzz-a"
    "$BUILD_DIR/leakyhammer" fuzz --smoke --seed 7 --threads 1 \
        --out "$BUILD_DIR/fuzz-b" > /dev/null
    cmp "$BUILD_DIR/fuzz-a/fig_fuzz_search.csv" \
        "$BUILD_DIR/fuzz-b/fig_fuzz_search.csv"
    cmp "$BUILD_DIR/fuzz-a/fuzz_best.txt" "$BUILD_DIR/fuzz-b/fuzz_best.txt"
    echo "fuzz smoke: artifacts bit-identical across runs and threads"
fi

# Campaign kill/resume smoke (default variant only -- the asan variant
# already runs the same paths under the in-process death tests): crash
# one shard via fault injection, resume, and require the merged CSV to
# match `leakyhammer repro` byte for byte.
if [ "$BUILD_VARIANT" = default ]; then
    ci/smoke_campaign.sh "$BUILD_DIR/leakyhammer" "$BUILD_DIR/campaign-smoke"
fi

# Perf harness: run every benchmark to completion and guard against
# regressions on the variant whose numbers are comparable to the
# tracked baseline (Release, hot-path checks off). The other variants
# smoke the harness at a tiny min_time so benchmark code is always
# exercised; the guarded run measures longer to damp run-to-run noise.
# Cross-machine variance remains — on hardware unlike the baseline's,
# widen LEAKY_BENCH_TOLERANCE rather than trusting a red/green flip.
if [ -x "$BUILD_DIR/bench/micro_simulator_throughput" ]; then
    if [ "$BUILD_VARIANT" = release ]; then
        (cd "$BUILD_DIR" && ./bench/micro_simulator_throughput \
            --benchmark_min_time=0.1 \
            --benchmark_out=BENCH_current.json \
            --benchmark_out_format=json)
        python3 tools/check_bench.py --baseline BENCH_kernel.json \
            --current "$BUILD_DIR/BENCH_current.json"
    else
        (cd "$BUILD_DIR" && ./bench/micro_simulator_throughput \
            --benchmark_min_time=0.01)
    fi
else
    echo "google-benchmark not found; kernel bench harness skipped"
fi
