#!/usr/bin/env bash
# Local mirror of the GitHub Actions CI: configure, build, test, and
# smoke-run the perf harness so benchmark code executes on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Perf smoke: the numbers are meaningless at this min_time; the point
# is that every benchmark still runs to completion.
if [ -x "$BUILD_DIR/bench/micro_simulator_throughput" ]; then
    (cd "$BUILD_DIR" && ./bench/micro_simulator_throughput \
        --benchmark_min_time=0.01)
else
    echo "google-benchmark not found; kernel bench harness skipped"
fi
