#!/usr/bin/env bash
# Registry-wide figure smoke, shared by .github/workflows/ci.yml and
# ci/run_ci.sh so the two paths cannot diverge: enumerate the figure
# registry, assert the expected entry count, reproduce every figure at
# --smoke on 4 threads and again on 1 thread, and require each CSV
# artifact to be bit-identical across the two runs (the sweep runner's
# determinism contract).
#
# usage: smoke_figures.sh <leakyhammer-binary> <output-dir>
#   EXPECTED_FIGURES   override the asserted registry size (default 29)
set -euo pipefail

BIN="${1:?usage: smoke_figures.sh <leakyhammer-binary> <output-dir>}"
OUT="${2:?usage: smoke_figures.sh <leakyhammer-binary> <output-dir>}"
EXPECTED_FIGURES="${EXPECTED_FIGURES:-29}"

mapfile -t figures < <("$BIN" list --names)
echo "figure registry: ${#figures[@]} entries"
if [ "${#figures[@]}" -ne "$EXPECTED_FIGURES" ]; then
    echo "error: expected $EXPECTED_FIGURES registered figures, found" \
         "${#figures[@]} (update EXPECTED_FIGURES when adding one)" >&2
    exit 1
fi

# Fresh output dirs: a stale CSV from a renamed figure would otherwise
# trip the artifact-count check below with a misleading message.
rm -rf "$OUT/parallel" "$OUT/serial"
mkdir -p "$OUT/parallel" "$OUT/serial"
for figure in "${figures[@]}"; do
    "$BIN" repro --fig "$figure" --smoke --threads 4 \
        --out "$OUT/parallel"
    "$BIN" repro --fig "$figure" --smoke --threads 1 \
        --out "$OUT/serial" > /dev/null
done

csvs=("$OUT"/parallel/*.csv)
if [ "${#csvs[@]}" -ne "$EXPECTED_FIGURES" ]; then
    echo "error: expected $EXPECTED_FIGURES CSV artifacts, found" \
         "${#csvs[@]}" >&2
    exit 1
fi
for csv in "${csvs[@]}"; do
    cmp "$csv" "$OUT/serial/$(basename "$csv")"
done
echo "all ${#figures[@]} figure CSVs bit-identical across thread counts"
