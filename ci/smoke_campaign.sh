#!/usr/bin/env bash
# Campaign kill/resume smoke, shared by .github/workflows/ci.yml and
# ci/run_ci.sh: run a 2-shard campaign of a small figure, kill shard 0
# mid-run with the injected-crash fault plan (armed through the
# LEAKY_CAMPAIGN_FAULT environment variable, the way an operator would
# arm it against an unmodified binary), resume it, run the other
# shard, and require the merged CSV to be byte-identical to the
# uninterrupted `leakyhammer repro` output — the campaign layer's
# determinism contract, end to end through the real CLI.
#
# usage: smoke_campaign.sh <leakyhammer-binary> <output-dir>
#   CAMPAIGN_FIGURE   figure to campaign (default counter-leak, the
#                     cheapest full-attack figure at --smoke)
set -euo pipefail

BIN="${1:?usage: smoke_campaign.sh <leakyhammer-binary> <output-dir>}"
OUT="${2:?usage: smoke_campaign.sh <leakyhammer-binary> <output-dir>}"
FIG="${CAMPAIGN_FIGURE:-counter-leak}"
DIR="$OUT/campaign"

rm -rf "$DIR" "$OUT/reference"
mkdir -p "$OUT/reference"

# The reference: one process, one thread, no faults.
"$BIN" repro --fig "$FIG" --smoke --threads 1 \
    --out "$OUT/reference" > /dev/null
ref_csv=("$OUT"/reference/*.csv)
if [ "${#ref_csv[@]}" -ne 1 ]; then
    echo "error: expected exactly one reference CSV for $FIG, found" \
         "${#ref_csv[@]}" >&2
    exit 1
fi

# Shard 0 with a crash injected at its second job: the process must
# die with the dedicated exit code, leaving a resumable checkpoint.
rc=0
LEAKY_CAMPAIGN_FAULT=crash@2 "$BIN" campaign --fig "$FIG" --smoke \
    --dir "$DIR" --shards 2 --shard 0 --threads 1 || rc=$?
if [ "$rc" -ne 42 ]; then
    echo "error: expected injected-crash exit code 42, got $rc" >&2
    exit 1
fi

# The checkpoint is readable and healthy (work missing, none failed).
"$BIN" campaign --status "$DIR"

# Resume shard 0, then run shard 1 as a separate process; the final
# invocation sees the campaign complete and merges automatically.
"$BIN" campaign --fig "$FIG" --smoke --dir "$DIR" --shards 2 \
    --shard 0 --threads 1
"$BIN" campaign --fig "$FIG" --smoke --dir "$DIR" --shards 2 \
    --shard 1 --threads 1
"$BIN" campaign --status "$DIR"

cmp "$DIR/$(basename "${ref_csv[0]}")" "${ref_csv[0]}"
echo "campaign kill/resume merge is byte-identical to the" \
     "uninterrupted run"
